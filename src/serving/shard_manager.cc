#include "serving/shard_manager.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <sstream>
#include <thread>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/options_io.h"
#include "serving/delta_log.h"
#include "serving/replication/replicated_log.h"

namespace fkc {
namespace serving {
namespace {

// Full-fleet formats: v1 (PR 2, template + constraint + shards) is still
// accepted by Restore; v2 adds the per-tenant override table; v3 adds the
// fleet-default objective tag and the per-tenant objective table right
// after the magic. Writers emit v2 / delta-v2 bytes whenever the whole
// fleet runs default fair-center — byte-identical to pre-objective builds —
// and switch to v3 as soon as any other objective is involved.
constexpr const char* kMagicV1 = "fkc-shards-v1";
constexpr const char* kMagicV2 = "fkc-shards-v2";
constexpr const char* kMagicV3 = "fkc-shards-v3";
constexpr const char* kDeltaMagic = "fkc-shards-delta-v2";
constexpr const char* kDeltaMagicV3 = "fkc-shards-delta-v3";

// Shard keys travel as length-prefixed raw segments in the fleet checkpoint
// (CheckpointReader::NextRaw); this cap keeps write and read sides agreeing
// on what a plausible key is, so CheckpointAll can never emit a blob that
// Restore rejects. Oversized keys are rejected at ingest with a Status —
// one tenant's garbage must never abort the fleet.
constexpr size_t kMaxKeyBytes = 1u << 20;

// Upper bounds on checkpointed table sizes, rejected before any allocation.
constexpr int64_t kMaxShards = 1 << 24;

// Reads the v2 "<count> { <raw key> <options> }*" override table.
Status ReadOverrides(CheckpointReader* cursor,
                     std::map<std::string, SlidingWindowOptions>* out) {
  int64_t count = 0;
  FKC_RETURN_IF_ERROR(cursor->NextInt(&count));
  // Every entry occupies well over one byte, so the remaining blob length
  // bounds any honest count.
  if (count < 0 || count > kMaxShards ||
      static_cast<size_t>(count) > cursor->Remaining()) {
    return Status::InvalidArgument("implausible override count in checkpoint");
  }
  out->clear();
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    SlidingWindowOptions options;
    FKC_RETURN_IF_ERROR(cursor->NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(cursor, &options));
    options.num_threads = 1;
    if (!out->emplace(std::move(key), options).second) {
      return Status::InvalidArgument("duplicate override key in checkpoint");
    }
  }
  return Status::OK();
}

void WriteOverrides(std::ostringstream* out,
                    const std::map<std::string, SlidingWindowOptions>& map) {
  *out << map.size() << ' ';
  for (const auto& [key, options] : map) {
    WriteCheckpointRaw(out, key);
    WriteSlidingWindowOptions(out, options);
  }
}

// Reads the v3 "<count> { <raw key> <tag> }*" objective-override table.
// Unknown tags reject here (ReadObjectiveTag), before any engine exists.
Status ReadObjectiveOverrides(CheckpointReader* cursor,
                              std::map<std::string, ObjectiveKind>* out) {
  int64_t count = 0;
  FKC_RETURN_IF_ERROR(cursor->NextInt(&count));
  if (count < 0 || count > kMaxShards ||
      static_cast<size_t>(count) > cursor->Remaining()) {
    return Status::InvalidArgument(
        "implausible objective-override count in checkpoint");
  }
  out->clear();
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    ObjectiveKind kind = ObjectiveKind::kFairCenter;
    FKC_RETURN_IF_ERROR(cursor->NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(ReadObjectiveTag(cursor, &kind));
    if (!out->emplace(std::move(key), kind).second) {
      return Status::InvalidArgument(
          "duplicate objective-override key in checkpoint");
    }
  }
  return Status::OK();
}

void WriteObjectiveOverrides(std::ostringstream* out,
                             const std::map<std::string, ObjectiveKind>& map) {
  *out << map.size() << ' ';
  for (const auto& [key, kind] : map) {
    WriteCheckpointRaw(out, key);
    WriteObjectiveTag(out, kind);
  }
}

}  // namespace

/// Timer-thread state. The condition variable makes StopMaintenance prompt:
/// the loop sleeps on it, not on a bare sleep_for.
struct ShardManager::MaintenanceState {
  MaintenanceOptions options;
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  /// Set (under mu) by the loop as its last act. Distinguishes a finished
  /// thread awaiting its join (safe to reap, even from StartMaintenance)
  /// from a loop still executing ticks.
  bool exited = false;
};

/// Unpins an epoch snapshot on scope exit, whatever the exit path (normal
/// return, early error return) — a leaked pin would block that shard's
/// eviction forever.
class ShardManager::FleetPin {
 public:
  FleetPin(ShardManager* manager, const std::vector<PinnedShard>* pinned)
      : manager_(manager), pinned_(pinned) {}
  ~FleetPin() { manager_->UnpinFleet(*pinned_); }
  FleetPin(const FleetPin&) = delete;
  FleetPin& operator=(const FleetPin&) = delete;

 private:
  ShardManager* manager_;
  const std::vector<PinnedShard>* pinned_;
};

int ShardManager::ResolveStripeCount(int requested) {
  // Auto scales past the core count so hash collisions between concurrently
  // hot keys are rare even with every hardware thread routing at once.
  int64_t n = requested <= 0
                  ? static_cast<int64_t>(4) * ThreadPool::HardwareThreads()
                  : requested;
  if (n > 256) n = 256;
  int resolved = 1;
  while (resolved < n) resolved <<= 1;  // round UP; 256 is itself a power
  return resolved;
}

ShardManager::ShardManager(ShardManagerOptions options,
                           ColorConstraint constraint, const Metric* metric,
                           const FairCenterSolver* solver)
    : options_(std::move(options)),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver),
      gc_mu_(std::make_unique<std::mutex>()),
      maintenance_admin_mu_(std::make_unique<std::mutex>()) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  // Shards run sequentially inside their manager-pool task; nesting pools
  // would oversubscribe and buys nothing (shard fan-out already covers the
  // cores).
  options_.window.num_threads = 1;
  if (options_.spill_store == nullptr) {
    options_.spill_store = std::make_shared<InMemorySpillStore>();
  }
  // Stripe count is fixed for the manager's lifetime (StripeOf must be a
  // pure function of the key); the resolved value is written back so
  // options().num_stripes reports what actually runs.
  options_.num_stripes = ResolveStripeCount(options_.num_stripes);
  stripes_.reserve(options_.num_stripes);
  for (int i = 0; i < options_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  // Resolve and build the pool eagerly: concurrent fan-outs must never race
  // a lazy construction. num_threads = 0 on a single-core host resolves to
  // 1, in which case no pool is parked at all.
  const int resolved = options_.num_threads == 1
                           ? 1
                           : ThreadPool::ResolveThreadCount(options_.num_threads);
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);
}

namespace {

// Rewraps a backend failure with the operation and addressing context an
// operator needs (which shard, which store, doing what) while preserving
// the original code and the backend's own message (which names the path).
Status AnnotateBackendFailure(const Status& inner, const std::string& context) {
  const std::string message = context + ": " + inner.message();
  switch (inner.code()) {
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kInfeasible:
      return Status::Infeasible(message);
    case StatusCode::kIoError:
    case StatusCode::kOk:  // unreachable: only called on failures
      break;
  }
  return Status::IoError(message);
}

}  // namespace

ShardManager::~ShardManager() { StopMaintenance(); }

ShardManager::ShardManager(ShardManager&& other) noexcept
    : options_(std::move(other.options_)),
      constraint_(std::move(other.constraint_)),
      metric_(other.metric_),
      solver_(other.solver_),
      stripes_(std::move(other.stripes_)),
      gc_mu_(std::move(other.gc_mu_)),
      live_count_(other.live_count_.load()),
      pool_(std::move(other.pool_)),
      maintenance_admin_mu_(std::move(other.maintenance_admin_mu_)),
      maintenance_(std::move(other.maintenance_)),
      maintenance_ticks_(other.maintenance_ticks_.load()),
      clock_(other.clock_.load()),
      evictions_(other.evictions_.load()),
      rehydrations_(other.rehydrations_.load()),
      spill_write_failures_(other.spill_write_failures_.load()),
      rehydration_failures_(other.rehydration_failures_.load()),
      checkpoint_failures_(other.checkpoint_failures_.load()) {
  // Moving a manager whose maintenance thread is running is unsupported
  // (the thread would keep the old `this`); Restore/Replay outputs — the
  // only places managers are moved — never have one. A finished
  // (self-stopped) thread is fine: it no longer touches the manager.
  FKC_CHECK(maintenance_ == nullptr || !maintenance_->thread.joinable() ||
            [&] {
              std::lock_guard<std::mutex> lock(maintenance_->mu);
              return maintenance_->exited;
            }());
}

ShardManager& ShardManager::operator=(ShardManager&& other) noexcept {
  if (this == &other) return *this;
  StopMaintenance();  // join our thread before its state is replaced
  options_ = std::move(other.options_);
  constraint_ = std::move(other.constraint_);
  metric_ = other.metric_;
  solver_ = other.solver_;
  stripes_ = std::move(other.stripes_);
  gc_mu_ = std::move(other.gc_mu_);
  live_count_.store(other.live_count_.load());
  pool_ = std::move(other.pool_);
  maintenance_admin_mu_ = std::move(other.maintenance_admin_mu_);
  maintenance_ = std::move(other.maintenance_);
  maintenance_ticks_.store(other.maintenance_ticks_.load());
  clock_.store(other.clock_.load());
  evictions_.store(other.evictions_.load());
  rehydrations_.store(other.rehydrations_.load());
  spill_write_failures_.store(other.spill_write_failures_.load());
  rehydration_failures_.store(other.rehydration_failures_.load());
  checkpoint_failures_.store(other.checkpoint_failures_.load());
  FKC_CHECK(maintenance_ == nullptr || !maintenance_->thread.joinable() ||
            [&] {
              std::lock_guard<std::mutex> lock(maintenance_->mu);
              return maintenance_->exited;
            }());
  return *this;
}

ShardManager::Stripe& ShardManager::StripeOf(const std::string& key) const {
  // The stripe count is a power of two fixed at construction, so routing is
  // a hash + mask — no lock, no modulo.
  const size_t h = std::hash<std::string>{}(key);
  return *stripes_[h & (stripes_.size() - 1)];
}

bool ShardManager::IsDirty(const Shard& shard) const {
  return shard.live ? shard.live->state_epoch() != shard.clean_epoch
                    : shard.spill_dirty;
}

Status ShardManager::ValidateArrival(const std::string& key, const Point& p,
                                     int64_t pinned_dim) const {
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument(
        StrFormat("shard key of %zu bytes exceeds the checkpointable limit",
                  key.size()));
  }
  // The coordinate pools CHECK-abort on empty points and on dimension
  // changes while points are stored, and the checkpoint reader rejects
  // non-finite coordinates — so any of these, once ingested, would either
  // kill the process or make CheckpointAll emit a blob Restore refuses
  // (and a spilled shard permanently fail rehydration).
  if (p.coords.empty()) {
    return Status::InvalidArgument("arrival carries no coordinates");
  }
  for (double x : p.coords) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("non-finite coordinate in arrival");
    }
  }
  if (pinned_dim >= 0 && static_cast<int64_t>(p.dimension()) != pinned_dim) {
    return Status::InvalidArgument(StrFormat(
        "%zu-dimensional arrival for a shard pinned to %lld dimensions",
        p.dimension(), static_cast<long long>(pinned_dim)));
  }
  if (p.color < 0 || p.color >= constraint_.ell()) {
    return Status::InvalidArgument(
        StrFormat("color %d outside the constraint's [0, %d) range", p.color,
                  constraint_.ell()));
  }
  // In-range colors with a zero cap are representable in checkpoints but
  // can never host a center; GuessStructure::Update CHECK-aborts on them.
  if (constraint_.cap(p.color) < 1) {
    return Status::InvalidArgument(
        StrFormat("color %d has a zero cap and cannot be served", p.color));
  }
  return Status::OK();
}

int64_t ShardManager::PinnedDimensionLocked(const Stripe& stripe,
                                            const std::string& key) const {
  auto it = stripe.shards.find(key);
  return it == stripe.shards.end() ? -1 : it->second.dim;
}

SlidingWindowOptions ShardManager::OptionsForKey(const Stripe& stripe,
                                                 const std::string& key) const {
  auto it = stripe.overrides.find(key);
  SlidingWindowOptions options =
      it == stripe.overrides.end() ? options_.window : it->second;
  options.num_threads = 1;
  return options;
}

ObjectiveKind ShardManager::ObjectiveForKey(const Stripe& stripe,
                                            const std::string& key) const {
  auto it = stripe.objective_overrides.find(key);
  return it == stripe.objective_overrides.end() ? options_.objective
                                                : it->second;
}

ShardManager::Shard* ShardManager::RouteLocked(Stripe& stripe,
                                               const std::string& key,
                                               bool create_missing,
                                               int64_t touch) {
  auto it = stripe.shards.find(key);
  if (it == stripe.shards.end()) {
    if (!create_missing) return nullptr;
    it = stripe.shards.try_emplace(key).first;
    it->second.kind = ObjectiveForKey(stripe, key);
    it->second.live =
        CreateObjectiveEngine(it->second.kind, OptionsForKey(stripe, key),
                              constraint_, metric_, solver_);
    live_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Shard* shard = &it->second;
  if (shard->live != nullptr) {
    TouchLive(stripe, it->first, shard, touch);
  } else {
    // Spilled: refresh last_touch only — the LRU index tracks live shards.
    // If a later rehydration commits, it inserts this value.
    shard->last_touch = touch;
  }
  return shard;
}

Status ShardManager::EnsureLiveHeld(const std::string& key, Shard* shard) {
  if (shard->live != nullptr) return Status::OK();
  auto blob = options_.spill_store->Get(key);
  if (!blob.ok()) {
    rehydration_failures_.fetch_add(1, std::memory_order_relaxed);
    return AnnotateBackendFailure(
        blob.status(), "rehydrating shard '" + key + "' from the " +
                           options_.spill_store->Name() + " spill store");
  }
  auto engine = DeserializeObjectiveEngine(blob.value(), metric_, solver_);
  if (!engine.ok()) return engine.status();
  // Same forged-blob guards as Restore/ApplyDelta: with a durable backend
  // the bytes come from a directory two fleets could share (or anyone
  // could write — the FNV checksum is integrity, not authentication). A
  // shard under a different constraint would pass ValidateArrival yet
  // CHECK-abort in StampArrival on its next ingest; a different dimension
  // would feed mismatched points into the coordinate pools.
  if (engine.value()->constraint().caps() != constraint_.caps()) {
    return Status::InvalidArgument(
        "spilled shard's constraint does not match the fleet constraint");
  }
  {
    Stripe& stripe = StripeOf(key);
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    // The blob's own magic must agree with the objective this shard was
    // created under — a store handing back another objective's state is
    // corruption (or another fleet's entry), not a valid rehydration.
    if (engine.value()->kind() != shard->kind) {
      return Status::InvalidArgument(
          "spilled shard's objective does not match the shard's objective");
    }
    if (shard->dim >= 0 && engine.value()->dimension() >= 0 &&
        engine.value()->dimension() != shard->dim) {
      return Status::InvalidArgument(
          "spilled shard's dimension does not match its pinned dimension");
    }
    shard->live = std::move(engine).value();
    if (shard->live->dimension() >= 0) shard->dim = shard->live->dimension();
    // A fresh deserialization restarts the epoch counter at 0; a clean
    // spill therefore rehydrates clean, a dirty one stays dirty via the
    // sentinel.
    shard->clean_epoch = shard->spill_dirty ? kNeverCheckpointed : 0;
    shard->spill_dirty = false;
    live_count_.fetch_add(1, std::memory_order_relaxed);
    rehydrations_.fetch_add(1, std::memory_order_relaxed);
    stripe.live_lru.insert({shard->last_touch, key});
  }
  // Best-effort, still under the shard lock (so a concurrent QueryAll
  // cannot read a half-erased entry): a failed erase only leaves a stale
  // store entry behind — never read again (the shard is live now) and
  // swept by the next GC.
  options_.spill_store->Erase(key);
  return Status::OK();
}

void ShardManager::TouchLive(Stripe& stripe, const std::string& key,
                             Shard* shard, int64_t touch) {
  // The erase is a no-op for a shard that just became live (its old
  // last_touch was removed from the index when it spilled, or never
  // inserted for a brand-new shard).
  stripe.live_lru.erase({shard->last_touch, key});
  shard->last_touch = touch;
  stripe.live_lru.insert({touch, key});
}

Result<ShardManager::SpillAttempt> ShardManager::TrySpillShard(
    const std::string& key, int64_t idle_ttl) {
  Stripe& stripe = StripeOf(key);
  std::unique_lock<std::shared_mutex> stripe_lock(stripe.mu);
  auto it = stripe.shards.find(key);
  if (it == stripe.shards.end()) return SpillAttempt::kSkipped;
  Shard* shard = &it->second;
  if (shard->live == nullptr || shard->pins > 0) return SpillAttempt::kSkipped;
  // Re-check idleness under the stripe lock: the shard may have been
  // touched between the caller's candidate snapshot and now.
  if (idle_ttl >= 0 &&
      clock_.load(std::memory_order_relaxed) - shard->last_touch <= idle_ttl) {
    return SpillAttempt::kSkipped;
  }
  // Only ever try_lock a shard mutex under a stripe lock (lock-order
  // protocol): a busy shard is mid-ingest or mid-query — skip it, the
  // next sweep catches it.
  std::unique_lock<std::mutex> shard_lock(shard->mu, std::try_to_lock);
  if (!shard_lock.owns_lock()) return SpillAttempt::kSkipped;
  const bool dirty = IsDirty(*shard);
  ObjectiveEngine* window = shard->live.get();
  stripe_lock.unlock();

  // Serialize and write outside the stripe lock (the shard lock keeps the
  // window stable). The GC mutex spans the write and the commit so a
  // concurrent GarbageCollectSpill, whose keep-set predates this spill,
  // can never reap the blob just written.
  std::string blob = window->SerializeState();
  std::lock_guard<std::mutex> gc(*gc_mu_);
  // Put before dropping the window: a failing backend must leave the shard
  // live and the fleet lossless.
  Status put = options_.spill_store->Put(key, std::move(blob));
  if (!put.ok()) {
    spill_write_failures_.fetch_add(1, std::memory_order_relaxed);
    return AnnotateBackendFailure(
        put, "spilling shard '" + key + "' to the " +
                 options_.spill_store->Name() + " spill store");
  }

  stripe_lock.lock();
  if (shard->pins > 0) {
    // A fleet read pinned the shard while the blob was being written; the
    // reader expects live shards to stay live, so abort the spill and drop
    // the just-written entry (best-effort — GC would sweep it anyway).
    stripe_lock.unlock();
    options_.spill_store->Erase(key);
    return SpillAttempt::kSkipped;
  }
  shard->spill_dirty = dirty;
  shard->live.reset();
  shard->clean_epoch = kNeverCheckpointed;
  stripe.live_lru.erase({shard->last_touch, key});
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return SpillAttempt::kSpilled;
}

void ShardManager::EnforceLiveCap(const std::string* exclude) {
  if (options_.max_live_shards <= 0) return;
  // Best-effort loop: each round picks the fleet-wide LRU victim — the
  // minimum of the stripes' eligible LRU fronts, least recently touched
  // with ties broken by smaller key, the same deterministic global order
  // the unstriped index had — and attempts the spill without any lock
  // held. Victims whose attempt failed are not retried, so the loop always
  // terminates; pinned shards are skipped but stay eligible for later
  // rounds (their pin is transient).
  std::set<std::string> attempted;
  for (;;) {
    if (live_count_.load(std::memory_order_relaxed) <=
        static_cast<size_t>(options_.max_live_shards)) {
      return;
    }
    bool found = false;
    std::pair<int64_t, std::string> best;
    for (const auto& stripe : stripes_) {
      std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
      for (const auto& entry : stripe->live_lru) {
        const std::string& key = entry.second;
        if (exclude != nullptr && key == *exclude) continue;
        if (attempted.count(key) != 0) continue;
        if (stripe->shards.find(key)->second.pins > 0) continue;
        if (!found || entry < best) {
          best = entry;
          found = true;
        }
        break;  // stripe fronts are sorted: the first eligible is its best
      }
    }
    if (!found) return;  // everything left is excluded, pinned, or failed
    attempted.insert(best.second);
    auto spilled = TrySpillShard(best.second, /*idle_ttl=*/-1);
    if (!spilled.ok()) {
      // Spill backend down: the cap is enforced best-effort until the
      // backend recovers. Nothing is lost.
      return;
    }
  }
}

std::vector<ShardManager::PinnedShard> ShardManager::PinFleet(
    std::map<std::string, SlidingWindowOptions>* overrides_out,
    std::map<std::string, ObjectiveKind>* objectives_out) {
  // All stripe locks at once, taken in ascending index order (the one
  // sanctioned multi-stripe acquisition), so the snapshot is a consistent
  // cut of the routing layer: every shard that existed before the call is
  // pinned, and the override table travels with exactly that shard set.
  std::vector<std::unique_lock<std::shared_mutex>> held;
  held.reserve(stripes_.size());
  for (const auto& stripe : stripes_) held.emplace_back(stripe->mu);
  std::vector<PinnedShard> pinned;
  size_t total = 0;
  for (const auto& stripe : stripes_) total += stripe->shards.size();
  pinned.reserve(total);
  if (overrides_out != nullptr) overrides_out->clear();
  if (objectives_out != nullptr) objectives_out->clear();
  for (const auto& stripe : stripes_) {
    for (auto& [key, shard] : stripe->shards) {
      ++shard.pins;
      pinned.push_back(PinnedShard{&key, &shard, stripe.get()});
    }
    if (overrides_out != nullptr) {
      overrides_out->insert(stripe->overrides.begin(),
                            stripe->overrides.end());
    }
    if (objectives_out != nullptr) {
      objectives_out->insert(stripe->objective_overrides.begin(),
                             stripe->objective_overrides.end());
    }
  }
  held.clear();  // release every stripe before the (possibly long) visit
  // Ascending key order across stripes — the exact order the unstriped map
  // yielded, which checkpoint byte-equality at every stripe count rests on.
  std::sort(pinned.begin(), pinned.end(),
            [](const PinnedShard& a, const PinnedShard& b) {
              return *a.key < *b.key;
            });
  return pinned;
}

void ShardManager::UnpinFleet(const std::vector<PinnedShard>& pinned) {
  if (pinned.empty()) return;
  // Same ascending all-stripes hold as PinFleet; one acquisition per
  // stripe instead of one per shard.
  std::vector<std::unique_lock<std::shared_mutex>> held;
  held.reserve(stripes_.size());
  for (const auto& stripe : stripes_) held.emplace_back(stripe->mu);
  for (const PinnedShard& entry : pinned) --entry.shard->pins;
}

Status ShardManager::Ingest(const std::string& key, Point p) {
  Stripe& stripe = StripeOf(key);
  Shard* shard = nullptr;
  {
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    // Validate and route in ONE stripe critical section, and pin the
    // dimension at routing time: two first arrivals racing on a fresh key
    // with different dimensions must resolve to first-writer-wins, the
    // loser rejected here instead of CHECK-aborting in the window.
    FKC_RETURN_IF_ERROR(
        ValidateArrival(key, p, PinnedDimensionLocked(stripe, key)));
    const int64_t tick = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    shard = RouteLocked(stripe, key, /*create_missing=*/true, tick);
    shard->dim = static_cast<int64_t>(p.dimension());
    ++shard->pins;
    ++stripe.ops;
  }
  Status status;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    status = EnsureLiveHeld(key, shard);
    if (status.ok()) shard->live->Update(std::move(p));
  }
  {
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    --shard->pins;
  }
  EnforceLiveCap(&key);
  return status;
}

Status ShardManager::IngestBatch(std::vector<KeyedPoint> batch) {
  if (batch.empty()) return Status::OK();
  const int64_t n = static_cast<int64_t>(batch.size());
  // Reserve the whole batch's clock range up front: arrival i owns tick
  // base + i + 1 whichever thread groups it, so LRU order and TTL
  // bookkeeping are identical run to run (and to the serial build) no
  // matter how the per-stripe grouping below interleaves. The flip side:
  // an arrival dropped by validation still consumes its tick (Ingest,
  // which validates before ticking, consumes none) — documented in the
  // header; the clock is an ordering device, not checkpointed state.
  const int64_t base = clock_.fetch_add(n, std::memory_order_relaxed);

  // One per-shard group: arrival order preserved within the key (the only
  // order that matters — shards share no state, so cross-key interleaving
  // is unobservable).
  struct Group {
    const std::string* key = nullptr;
    std::vector<Point> points;
    int64_t size = 0;        ///< recorded at grouping, BEFORE any move
    int64_t last_clock = 0;  ///< manager clock at the group's last arrival
    int64_t dim = -1;        ///< dimension pinned by the first accepted point
    Shard* shard = nullptr;
    Status status;  ///< the group's ingest outcome
  };
  // Per-stripe slice of the batch; groups/validates under only its own
  // stripe's lock, so disjoint stripes never serialize on each other.
  struct StripeBatch {
    Stripe* stripe = nullptr;
    std::vector<int64_t> indices;  ///< into batch, ascending
    std::map<std::string, Group> groups;
    int64_t dropped = 0;
    Status first_error;
    int64_t first_error_index = -1;  ///< original batch position
  };

  // Phase 1: partition by stripe, lock-free (StripeOf is a pure hash).
  const size_t mask = stripes_.size() - 1;
  std::vector<std::vector<int64_t>> indices_by_stripe(stripes_.size());
  for (int64_t i = 0; i < n; ++i) {
    indices_by_stripe[std::hash<std::string>{}(batch[i].key) & mask]
        .push_back(i);
  }
  std::vector<StripeBatch> stripe_work;
  for (size_t s = 0; s < stripes_.size(); ++s) {
    if (indices_by_stripe[s].empty()) continue;
    StripeBatch sb;
    sb.stripe = stripes_[s].get();
    sb.indices = std::move(indices_by_stripe[s]);
    stripe_work.push_back(std::move(sb));
  }

  // Phase 2: group + validate + route + pin WITHIN each stripe,
  // concurrently over the pool. Each task holds exactly its own stripe's
  // lock; validation and dimension pinning happen in the same critical
  // section that creates the shard, so a racing batch on the same fresh
  // key validates against the dimension pinned here.
  auto group_stripe = [&](int64_t w) {
    StripeBatch& sb = stripe_work[w];
    std::lock_guard<std::shared_mutex> stripe_lock(sb.stripe->mu);
    for (int64_t i : sb.indices) {
      KeyedPoint& kp = batch[i];
      // For a key already accepted earlier in this batch the group carries
      // the pinned dimension (a brand-new shard has none on record yet).
      auto git = sb.groups.find(kp.key);
      const int64_t pinned = git != sb.groups.end()
                                 ? git->second.dim
                                 : PinnedDimensionLocked(*sb.stripe, kp.key);
      Status status = ValidateArrival(kp.key, kp.point, pinned);
      if (!status.ok()) {
        ++sb.dropped;
        if (sb.first_error_index < 0) {
          sb.first_error = std::move(status);
          sb.first_error_index = i;
        }
        continue;
      }
      if (git == sb.groups.end()) git = sb.groups.try_emplace(kp.key).first;
      Group& group = git->second;
      group.dim = static_cast<int64_t>(kp.point.dimension());
      group.points.push_back(std::move(kp.point));
      ++group.size;
      group.last_clock = base + i + 1;
    }
    for (auto& [key, group] : sb.groups) {
      group.key = &key;
      group.shard = RouteLocked(*sb.stripe, key, /*create_missing=*/true,
                                group.last_clock);
      group.shard->dim = group.dim;
      ++group.shard->pins;
    }
    sb.stripe->ops += static_cast<int64_t>(sb.groups.size());
  };
  FanOut(static_cast<int64_t>(stripe_work.size()), group_stripe);

  // Phase 3: fan the per-shard groups out over the pool. Each task blocks
  // only on its own shard's lock (held by nobody else routing a disjoint
  // key set).
  std::vector<Group*> work;
  for (StripeBatch& sb : stripe_work) {
    for (auto& [key, group] : sb.groups) work.push_back(&group);
  }
  FanOut(static_cast<int64_t>(work.size()), [&](int64_t i) {
    Group* group = work[i];
    std::lock_guard<std::mutex> shard_lock(group->shard->mu);
    group->status = EnsureLiveHeld(*group->key, group->shard);
    if (group->status.ok()) {
      group->shard->live->UpdateBatch(std::move(group->points));
    }
  });

  // Phase 4: unpin per stripe and merge the accounting. The earliest
  // validation offender (by original batch position) wins the reported
  // error; failed groups use the size recorded at grouping time — the
  // points vector is unreliable after the std::move above.
  int64_t dropped = 0;
  Status first_error = Status::OK();
  int64_t first_error_index = n;
  for (StripeBatch& sb : stripe_work) {
    {
      std::lock_guard<std::shared_mutex> stripe_lock(sb.stripe->mu);
      for (auto& [key, group] : sb.groups) --group.shard->pins;
    }
    dropped += sb.dropped;
    if (sb.first_error_index >= 0 && sb.first_error_index < first_error_index) {
      first_error = std::move(sb.first_error);
      first_error_index = sb.first_error_index;
    }
  }
  for (StripeBatch& sb : stripe_work) {
    for (auto& [key, group] : sb.groups) {
      if (!group.status.ok()) {
        // Rehydration failed: the whole group was dropped (points were
        // only consumed on success).
        dropped += group.size;
        if (first_error.ok()) first_error = group.status;
      }
    }
  }
  EnforceLiveCap(nullptr);

  if (dropped > 0) {
    return Status::InvalidArgument(
        StrFormat("dropped %lld of %lld arrivals; first error: %s",
                  static_cast<long long>(dropped), static_cast<long long>(n),
                  first_error.message().c_str()));
  }
  return Status::OK();
}

Status ShardManager::SetTenantOptions(const std::string& key,
                                      SlidingWindowOptions options) {
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument("tenant key exceeds the size limit");
  }
  FKC_RETURN_IF_ERROR(ValidateSlidingWindowOptions(options));
  if (stripe.shards.count(key) != 0) {
    return Status::FailedPrecondition(
        "shard '" + key + "' already exists; options are fixed at creation");
  }
  options.num_threads = 1;
  if (SameCheckpointedOptions(options, options_.window)) {
    stripe.overrides.erase(key);  // identical to the template: no store
  } else {
    stripe.overrides[key] = options;
  }
  return Status::OK();
}

const SlidingWindowOptions* ShardManager::TenantOptions(
    const std::string& key) const {
  Stripe& stripe = StripeOf(key);
  std::shared_lock<std::shared_mutex> stripe_lock(stripe.mu);
  auto it = stripe.overrides.find(key);
  return it == stripe.overrides.end() ? nullptr : &it->second;
}

Status ShardManager::SetTenantObjective(const std::string& key,
                                        ObjectiveKind objective) {
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
  if (key.size() >= kMaxKeyBytes) {
    return Status::InvalidArgument("tenant key exceeds the size limit");
  }
  if (stripe.shards.count(key) != 0) {
    return Status::FailedPrecondition("shard '" + key +
                                      "' already exists; its objective is "
                                      "fixed at creation");
  }
  if (objective == options_.objective) {
    stripe.objective_overrides.erase(key);  // same as the default: no store
  } else {
    stripe.objective_overrides[key] = objective;
  }
  return Status::OK();
}

ObjectiveKind ShardManager::TenantObjective(const std::string& key) const {
  Stripe& stripe = StripeOf(key);
  std::shared_lock<std::shared_mutex> stripe_lock(stripe.mu);
  return ObjectiveForKey(stripe, key);
}

Result<ObjectiveSolution> ShardManager::Query(const std::string& key,
                                              QueryStats* stats) {
  Stripe& stripe = StripeOf(key);
  Shard* shard = nullptr;
  {
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    shard = RouteLocked(stripe, key, /*create_missing=*/false,
                        clock_.load(std::memory_order_relaxed));
    if (shard == nullptr) {
      return Status::NotFound("no shard for key '" + key + "'");
    }
    ++shard->pins;
    ++stripe.ops;
  }
  Result<ObjectiveSolution> result = [&]() -> Result<ObjectiveSolution> {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    FKC_RETURN_IF_ERROR(EnsureLiveHeld(key, shard));
    return shard->live->QueryObjective(stats);
  }();
  {
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    --shard->pins;
  }
  EnforceLiveCap(&key);
  return result;
}

std::vector<ShardAnswer> ShardManager::QueryAll() {
  // Epoch snapshot: pin the current shard set under one all-stripes
  // acquisition, then answer shard by shard under per-shard locks only —
  // ingest to unrelated shards proceeds throughout the round.
  std::vector<PinnedShard> pinned = PinFleet();
  FleetPin unpin(this, &pinned);

  // Live shards answer in place; spilled shards answer from an ephemeral
  // deserialization so a fleet-wide query round does not defeat eviction.
  // Each spilled task fetches its own blob inside the fan-out and drops it
  // with the task: fetching the whole fleet's blobs up front would
  // transiently hold every spilled shard in memory, the exact condition a
  // durable store plus live-shard cap exists to prevent.
  std::vector<ShardAnswer> answers(pinned.size());
  FanOut(static_cast<int64_t>(pinned.size()), [&](int64_t i) {
    answers[i].key = *pinned[i].key;
    Shard* shard = pinned[i].shard;
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    if (shard->live != nullptr) {
      answers[i].solution = shard->live->QueryObjective(&answers[i].stats);
      return;
    }
    // The blob read happens under the shard lock (a concurrent rehydration
    // commits and erases the entry under the same lock); deserialization
    // and the query run outside every manager lock. The shard's objective
    // is captured beside the blob: ApplyDelta, the only post-creation
    // writer of `kind`, swaps it under this same shard lock.
    const ObjectiveKind expected = shard->kind;
    Result<std::string> blob = options_.spill_store->Get(answers[i].key);
    shard_lock.unlock();
    if (!blob.ok()) {
      answers[i].solution = blob.status();
      return;
    }
    auto engine = DeserializeObjectiveEngine(blob.value(), metric_, solver_);
    blob = std::string();  // the deserialized engine supersedes the bytes
    if (!engine.ok()) {
      answers[i].solution = engine.status();
      return;
    }
    if (engine.value()->kind() != expected) {
      answers[i].solution = Status::InvalidArgument(
          "spilled shard's objective does not match the shard's objective");
      return;
    }
    answers[i].solution = engine.value()->QueryObjective(&answers[i].stats);
  });
  return answers;
}

int64_t ShardManager::EvictIdle(int64_t idle_ttl, Status* spill_status) {
  if (spill_status != nullptr) *spill_status = Status::OK();
  if (idle_ttl < 0) return 0;
  // Each stripe's LRU index orders its live shards by last_touch, so the
  // idle ones are exactly its prefix — snapshot those per stripe (one
  // stripe lock at a time), merge into the global (touch, key) order the
  // unstriped sweep had, then spill without any lock held. TrySpillShard
  // re-checks idleness (and pins, and the lock) per victim, so a candidate
  // touched after the snapshot is simply skipped.
  const int64_t now = clock_.load(std::memory_order_relaxed);
  std::vector<std::pair<int64_t, std::string>> candidates;
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    for (const auto& [touch, key] : stripe->live_lru) {
      if (now - touch <= idle_ttl) break;
      candidates.emplace_back(touch, key);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  int64_t evicted = 0;
  for (const auto& [touch, key] : candidates) {
    auto attempt = TrySpillShard(key, idle_ttl);
    if (!attempt.ok()) {
      // Backend down: stop the sweep, leave the remaining shards live.
      if (spill_status != nullptr) *spill_status = attempt.status();
      break;
    }
    if (attempt.value() == SpillAttempt::kSpilled) ++evicted;
  }
  return evicted;
}

Result<std::string> ShardManager::CheckpointSnapshot(bool dirty_only) {
  // Pin set and override table under ONE all-stripes acquisition, so the
  // table travels with the shard set it was snapshotted beside. The merged
  // override map and the key-sorted pin vector reproduce exactly the
  // iteration order of the unstriped (or serially built) fleet — the
  // byte-equality contract at every stripe count.
  std::map<std::string, SlidingWindowOptions> overrides;
  std::map<std::string, ObjectiveKind> objectives;
  std::vector<PinnedShard> pinned = PinFleet(&overrides, &objectives);
  FleetPin unpin(this, &pinned);

  // Format choice: a fleet whose every tenant runs the default fair-center
  // objective serializes as v2 — byte-identical to pre-objective builds —
  // and switches to v3 (magic, then the default tag, then the objective
  // table after the option overrides) as soon as any other objective is
  // configured, fleet-wide or per tenant.
  const bool mixed = options_.objective != ObjectiveKind::kFairCenter ||
                     !objectives.empty();
  std::ostringstream out;
  if (mixed) {
    out << (dirty_only ? kDeltaMagicV3 : kMagicV3) << ' ';
    WriteObjectiveTag(&out, options_.objective);
  } else {
    out << (dirty_only ? kDeltaMagic : kMagicV2) << ' ';
  }
  if (!dirty_only) {
    // The window template (needed to spawn shards for keys first seen
    // after a restore). num_threads, num_stripes, max_live_shards, and the
    // spill store are execution/resource knobs and are deliberately
    // excluded, like in the core checkpoint.
    WriteSlidingWindowOptions(&out, options_.window);
  }
  WriteColorCaps(&out, constraint_);
  WriteOverrides(&out, overrides);
  if (mixed) WriteObjectiveOverrides(&out, objectives);

  // Every captured shard: length-prefixed key, length-prefixed core
  // checkpoint, taken one shard lock at a time. A spilled shard's state is
  // its spill blob, verbatim. Clean marks are staged and committed only
  // after every blob is in hand — a failing spill read must not leave half
  // the fleet marked clean for a checkpoint that never existed. The epoch
  // recorded per live shard is the one at capture time, so arrivals
  // landing after a shard's segment was taken leave it dirty.
  struct CleanMark {
    Shard* shard;
    int64_t epoch;
    bool was_live;
  };
  std::vector<CleanMark> clean_marks;
  clean_marks.reserve(pinned.size());
  std::ostringstream body;
  int64_t written = 0;
  for (const PinnedShard& entry : pinned) {
    std::lock_guard<std::mutex> shard_lock(entry.shard->mu);
    if (dirty_only && !IsDirty(*entry.shard)) continue;
    WriteCheckpointRaw(&body, *entry.key);
    if (entry.shard->live) {
      WriteCheckpointRaw(&body, entry.shard->live->SerializeState());
      clean_marks.push_back(
          CleanMark{entry.shard, entry.shard->live->state_epoch(), true});
    } else {
      auto blob = options_.spill_store->Get(*entry.key);
      if (!blob.ok()) {
        checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
        return AnnotateBackendFailure(
            blob.status(),
            std::string(dirty_only ? "delta checkpoint" : "full checkpoint") +
                " aborted reading spilled shard '" + *entry.key +
                "' from the " + options_.spill_store->Name() + " spill store");
      }
      WriteCheckpointRaw(&body, blob.value());
      clean_marks.push_back(CleanMark{entry.shard, kNeverCheckpointed, false});
    }
    ++written;
  }
  out << written << ' ' << body.str();

  // Commit the staged marks while still holding the pins: a was_live shard
  // is therefore still live (pinned shards are never spilled). A shard
  // captured spilled but rehydrated since keeps its dirty state —
  // conservative, the next delta simply re-ships it.
  for (const CleanMark& mark : clean_marks) {
    std::lock_guard<std::mutex> shard_lock(mark.shard->mu);
    if (mark.was_live) {
      mark.shard->clean_epoch = mark.epoch;
    } else if (mark.shard->live == nullptr) {
      mark.shard->spill_dirty = false;
    }
  }
  return out.str();
}

Result<std::string> ShardManager::CheckpointAll() {
  return CheckpointSnapshot(/*dirty_only=*/false);
}

Result<std::string> ShardManager::CheckpointDelta() {
  return CheckpointSnapshot(/*dirty_only=*/true);
}

size_t ShardManager::dirty_shard_count() const {
  // Shard map entries are never erased, so the snapshot stays valid after
  // the stripe locks are dropped; dirtiness is then read per shard lock.
  std::vector<const Shard*> snapshot;
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    for (const auto& [key, shard] : stripe->shards) snapshot.push_back(&shard);
  }
  size_t dirty = 0;
  for (const Shard* shard : snapshot) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    if (IsDirty(*shard)) ++dirty;
  }
  return dirty;
}

Status ShardManager::ApplyDelta(const std::string& bytes) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  const bool v3 = magic == kDeltaMagicV3;
  if (!v3 && magic != kDeltaMagic) {
    return Status::InvalidArgument("not an fkc shard delta (bad magic '" +
                                   magic + "')");
  }

  // Parse and stage everything with NO manager lock held — the inputs
  // (constraint, metric, solver) are immutable after construction, and a
  // truncated or corrupt delta must leave the fleet exactly as it was.
  // A v2 delta (no objective data) is by construction all-fair-center.
  ObjectiveKind default_objective = ObjectiveKind::kFairCenter;
  if (v3) FKC_RETURN_IF_ERROR(ReadObjectiveTag(&cursor, &default_objective));
  if (default_objective != options_.objective) {
    return Status::InvalidArgument(
        "delta fleet objective does not match this manager's");
  }
  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&cursor, &caps));
  if (caps != constraint_.caps()) {
    return Status::InvalidArgument(
        "delta constraint does not match this manager's");
  }
  std::map<std::string, SlidingWindowOptions> overrides;
  FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &overrides));
  std::map<std::string, ObjectiveKind> objective_overrides;
  if (v3) {
    FKC_RETURN_IF_ERROR(ReadObjectiveOverrides(&cursor, &objective_overrides));
  }

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in delta");
  }
  // No reserve from the blob-supplied count: growth is paid only for
  // entries that actually parse.
  std::vector<std::pair<std::string, std::unique_ptr<ObjectiveEngine>>> staged;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto engine = DeserializeObjectiveEngine(blob, metric_, solver_);
    if (!engine.ok()) return engine.status();
    // The blob's own magic must match the objective the delta's table
    // assigns this tenant — a forged or misfiled segment rejects here,
    // before anything has been mutated.
    auto ov = objective_overrides.find(key);
    const ObjectiveKind expected =
        ov == objective_overrides.end() ? default_objective : ov->second;
    if (engine.value()->kind() != expected) {
      return Status::InvalidArgument(
          "shard blob objective does not match the delta's objective table");
    }
    // An interior-corrupt or forged shard blob under a different constraint
    // would restore fine and then CHECK-abort on its next in-range ingest
    // (StampArrival checks color against the shard's own ell).
    if (engine.value()->constraint().caps() != constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint in delta");
    }
    staged.emplace_back(std::move(key), std::move(engine).value());
  }

  {
    // Replace the override tables (options AND objectives) as one unit:
    // all stripe locks, ascending, then scatter the merged tables into the
    // per-stripe slices.
    std::vector<std::unique_lock<std::shared_mutex>> held;
    held.reserve(stripes_.size());
    for (const auto& stripe : stripes_) held.emplace_back(stripe->mu);
    for (const auto& stripe : stripes_) {
      stripe->overrides.clear();
      stripe->objective_overrides.clear();
    }
    for (auto& [key, opts] : overrides) {
      StripeOf(key).overrides.emplace(key, std::move(opts));
    }
    for (const auto& [key, kind] : objective_overrides) {
      StripeOf(key).objective_overrides.emplace(key, kind);
    }
  }
  // Swap each staged shard in under its own lock: per-shard atomicity (a
  // concurrent QueryAll may see a partially applied delta, never a torn
  // shard), and ingest to untouched tenants proceeds throughout.
  for (auto& [key, engine] : staged) {
    Stripe& stripe = StripeOf(key);
    Shard* shard = nullptr;
    {
      std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
      auto it = stripe.shards.find(key);
      if (it == stripe.shards.end()) {
        // A tenant first seen in this delta: build the entry fully formed
        // under the stripe lock (nobody can hold its shard lock yet).
        it = stripe.shards.try_emplace(key).first;
        Shard* fresh = &it->second;
        fresh->kind = engine->kind();
        fresh->live = std::move(engine);
        fresh->dim = fresh->live->dimension();
        // The shard now matches the leader's checkpointed state exactly.
        fresh->clean_epoch = fresh->live->state_epoch();
        fresh->spill_dirty = false;
        live_count_.fetch_add(1, std::memory_order_relaxed);
        TouchLive(stripe, it->first, fresh,
                  clock_.load(std::memory_order_relaxed));
        continue;
      }
      shard = &it->second;
      ++shard->pins;
    }
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    bool was_live;
    {
      std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
      was_live = shard->live != nullptr;
      // The kind follows the engine it was validated against above — an
      // objective change for an existing tenant arrives only this way, as
      // a whole replacement state, never as a live mutation.
      shard->kind = engine->kind();
      shard->live = std::move(engine);
      shard->dim = shard->live->dimension();
      shard->clean_epoch = shard->live->state_epoch();
      shard->spill_dirty = false;
      if (!was_live) live_count_.fetch_add(1, std::memory_order_relaxed);
      TouchLive(stripe, key, shard, clock_.load(std::memory_order_relaxed));
      --shard->pins;
    }
    if (!was_live) {
      // A previously spilled shard's store entry is superseded; drop it
      // under the shard lock (best-effort — a stale entry is never read
      // and GC sweeps it).
      options_.spill_store->Erase(key);
    }
  }
  EnforceLiveCap(nullptr);
  return Status::OK();
}

Result<ShardManager> ShardManager::Restore(
    const std::string& bytes, const Metric* metric,
    const FairCenterSolver* solver, int num_threads, int64_t max_live_shards,
    std::shared_ptr<SpillStore> spill_store, int num_stripes) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  const bool v3 = magic == kMagicV3;
  const bool v2 = magic == kMagicV2;
  if (!v3 && !v2 && magic != kMagicV1) {
    return Status::InvalidArgument("not an fkc shard checkpoint (bad magic '" +
                                   magic + "')");
  }

  ShardManagerOptions options;
  options.num_threads = num_threads;
  options.num_stripes = num_stripes;
  options.max_live_shards = max_live_shards;
  options.spill_store = std::move(spill_store);
  // v1/v2 blobs predate the objective layer and restore unchanged, as
  // all-fair-center (the only objective those builds had).
  if (v3) FKC_RETURN_IF_ERROR(ReadObjectiveTag(&cursor, &options.objective));
  // ReadSlidingWindowOptions validates what it parses (window size, delta,
  // beta, variant, slack exponents, range bounds): a corrupted or
  // adversarial blob must fail here, not abort in a constructor CHECK.
  FKC_RETURN_IF_ERROR(ReadSlidingWindowOptions(&cursor, &options.window));

  std::vector<int> caps;
  FKC_RETURN_IF_ERROR(ReadColorCaps(&cursor, &caps));

  // Single-threaded throughout: the manager is not published to any other
  // thread until Restore returns, so its members are mutated directly.
  ShardManager manager(options, ColorConstraint(std::move(caps)), metric,
                       solver);
  if (v2 || v3) {
    std::map<std::string, SlidingWindowOptions> overrides;
    FKC_RETURN_IF_ERROR(ReadOverrides(&cursor, &overrides));
    for (auto& [key, opts] : overrides) {
      manager.StripeOf(key).overrides.emplace(key, std::move(opts));
    }
  }
  if (v3) {
    std::map<std::string, ObjectiveKind> objective_overrides;
    FKC_RETURN_IF_ERROR(ReadObjectiveOverrides(&cursor, &objective_overrides));
    for (const auto& [key, kind] : objective_overrides) {
      manager.StripeOf(key).objective_overrides.emplace(key, kind);
    }
  }

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > kMaxShards ||
      static_cast<size_t>(shard_count) > cursor.Remaining()) {
    return Status::InvalidArgument("implausible shard count in checkpoint");
  }
  // Verbatim blob segments of the currently-live shards, so enforcing the
  // cap mid-restore hands the exact bytes just read to the spill store
  // instead of re-serializing a window that was deserialized moments ago.
  // Holds at most max_live_shards entries at any time.
  std::map<std::string, std::string> verbatim;
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto engine = DeserializeObjectiveEngine(blob, metric, solver);
    if (!engine.ok()) return engine.status();
    // Same forged-blob guard as ApplyDelta: a shard under a different
    // constraint would pass the manager's ValidateArrival yet CHECK-abort
    // inside the window on the next ingest.
    if (engine.value()->constraint().caps() != manager.constraint_.caps()) {
      return Status::InvalidArgument(
          "shard constraint does not match the fleet constraint");
    }
    // Shards carry their mutex, so entries are built in place.
    Stripe& stripe = manager.StripeOf(key);
    // The blob's own magic must match the objective the checkpoint's own
    // table (default tag + overrides, scattered above) assigns this
    // tenant; v1/v2 tables are implicitly all-fair-center. Forged or
    // swapped segments reject here, never abort.
    if (engine.value()->kind() != manager.ObjectiveForKey(stripe, key)) {
      return Status::InvalidArgument(
          "shard blob objective does not match the checkpoint's objective "
          "table");
    }
    auto [pos, inserted] = stripe.shards.try_emplace(std::move(key));
    if (!inserted) {
      return Status::InvalidArgument("duplicate shard key in checkpoint");
    }
    Shard& shard = pos->second;
    shard.kind = engine.value()->kind();
    shard.live = std::move(engine).value();
    shard.dim = shard.live->dimension();
    shard.clean_epoch = shard.live->state_epoch();  // restored = checkpointed
    stripe.live_lru.insert({shard.last_touch, pos->first});
    manager.live_count_.fetch_add(1, std::memory_order_relaxed);
    if (max_live_shards <= 0) continue;
    verbatim.emplace(pos->first, std::move(blob));
    // Enforce the cap as shards stream in, not after: a fleet far larger
    // than max_live_shards must never be fully resident at once — that is
    // the exact condition the cap exists to prevent. All last_touch values
    // are equal here, so the surviving set (the largest keys) matches what
    // one sweep at the end would keep — the fleet-wide LRU victim is the
    // minimum of the stripes' LRU fronts, exactly the order the unstriped
    // index had.
    while (manager.live_count_.load() >
           static_cast<size_t>(max_live_shards)) {
      Stripe* victim_stripe = nullptr;
      for (const auto& candidate : manager.stripes_) {
        if (candidate->live_lru.empty()) continue;
        if (victim_stripe == nullptr ||
            *candidate->live_lru.begin() <
                *victim_stripe->live_lru.begin()) {
          victim_stripe = candidate.get();
        }
      }
      FKC_CHECK(victim_stripe != nullptr);
      const auto victim = victim_stripe->live_lru.begin();
      Shard& victim_shard =
          victim_stripe->shards.find(victim->second)->second;
      auto segment = verbatim.find(victim->second);
      // A spill backend that cannot even absorb the restore is fatal to
      // the restore, not the process.
      Status put = manager.options_.spill_store->Put(
          victim->second, std::move(segment->second));
      if (!put.ok()) {
        return AnnotateBackendFailure(
            put, "restore-time spill of shard '" + victim->second +
                     "' to the " + manager.options_.spill_store->Name() +
                     " spill store");
      }
      verbatim.erase(segment);
      victim_shard.live.reset();
      victim_shard.spill_dirty = false;  // restored = checkpointed = clean
      victim_shard.clean_epoch = kNeverCheckpointed;
      victim_stripe->live_lru.erase(victim);
      manager.live_count_.fetch_sub(1, std::memory_order_relaxed);
      manager.evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return manager;
}

Status ShardManager::StartMaintenance(MaintenanceOptions options) {
  if (options.cadence <= std::chrono::milliseconds::zero()) {
    return Status::InvalidArgument("maintenance cadence must be positive");
  }
  if (options.delta_log != nullptr && options.replicated_log != nullptr) {
    // The per-shard dirty bit is a single-consumer cursor: two captors
    // would each ship only the shards the other had not already marked
    // clean, and both logs would replay a torn fleet.
    return Status::InvalidArgument(
        "at most one of delta_log / replicated_log may capture");
  }
  std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
  if (maintenance_ != nullptr) {
    bool exited;
    {
      std::lock_guard<std::mutex> lock(maintenance_->mu);
      exited = maintenance_->exited;
    }
    if (!exited) {
      return Status::FailedPrecondition("maintenance thread already running");
    }
    // The previous loop already exited (a hook-initiated self-stop, which
    // cannot join itself): reap the finished thread here. The join is
    // prompt — the thread is past its last statement — and cannot be the
    // calling thread (a hook caller would still be inside the loop, with
    // `exited` unset).
    if (maintenance_->thread.joinable()) maintenance_->thread.join();
    maintenance_.reset();
  }
  maintenance_ = std::make_unique<MaintenanceState>();
  maintenance_->options = std::move(options);
  maintenance_->thread = std::thread(
      [this, state = maintenance_.get()] { MaintenanceLoop(state); });
  return Status::OK();
}

void ShardManager::StopMaintenance() {
  if (maintenance_admin_mu_ == nullptr) return;  // moved-from shell
  // Detach the state from the manager under the admin lock, then signal
  // and join WITHOUT it: the maintenance thread may itself be inside a
  // re-entrant StopMaintenance (an on_tick hook) waiting on the admin
  // mutex, and joining while holding it would deadlock both sides.
  std::unique_ptr<MaintenanceState> state;
  {
    std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
    if (maintenance_ == nullptr) return;
    if (maintenance_->thread.get_id() == std::this_thread::get_id()) {
      // Called from the maintenance thread (an on_tick hook): joining
      // oneself is impossible. Signal the loop to exit after this tick;
      // the thread stays attached until another thread's Stop or Start
      // (or the destructor) reaps it.
      std::lock_guard<std::mutex> lock(maintenance_->mu);
      maintenance_->stop = true;
      return;
    }
    state = std::move(maintenance_);
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->stop = true;
  }
  state->cv.notify_all();
  if (state->thread.joinable()) state->thread.join();
}

bool ShardManager::maintenance_running() const {
  std::lock_guard<std::mutex> admin(*maintenance_admin_mu_);
  if (maintenance_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  return !maintenance_->exited;
}

void ShardManager::MaintenanceLoop(MaintenanceState* state) {
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    // wait_for returns true only when stop was signalled — a prompt,
    // race-free shutdown even when StopMaintenance lands mid-sleep.
    if (state->cv.wait_for(lock, state->options.cadence,
                           [state] { return state->stop; })) {
      state->exited = true;
      return;
    }
    lock.unlock();
    RunMaintenanceTick(state->options);
    lock.lock();
  }
}

MaintenanceTickReport ShardManager::RunMaintenanceTick(
    const MaintenanceOptions& options) {
  MaintenanceTickReport report;
  report.tick = maintenance_ticks_.fetch_add(1) + 1;

  if (options.idle_ttl >= 0) {
    Status spill_status;
    report.evicted = EvictIdle(options.idle_ttl, &spill_status);
    if (report.status.ok()) report.status = spill_status;
  }

  if (options.delta_log != nullptr && options.replicated_log != nullptr) {
    if (report.status.ok()) {
      report.status = Status::InvalidArgument(
          "at most one of delta_log / replicated_log may capture");
    }
  } else if (options.delta_log != nullptr && dirty_shard_count() > 0) {
    auto captured = options.delta_log->Capture(this);
    if (captured.ok()) {
      report.capture_bytes = captured.value().bytes;
      report.rebased = captured.value().rebased;
    } else if (report.status.ok()) {
      report.status = captured.status();
    }
  } else if (options.replicated_log != nullptr && dirty_shard_count() > 0) {
    auto captured = options.replicated_log->Capture(this);
    if (captured.ok()) {
      report.capture_bytes = captured.value().bytes;
      report.rebased = captured.value().rebased;
    } else if (report.status.ok()) {
      report.status = captured.status();
    }
  }

  if (options.gc_every > 0 && report.tick % options.gc_every == 0) {
    auto removed = GarbageCollectSpill();
    if (removed.ok()) {
      report.gc_removed = removed.value();
    } else if (report.status.ok()) {
      report.status = removed.status();
    }
  }

  if (options.on_tick) options.on_tick(report);
  return report;
}

Result<int64_t> ShardManager::GarbageCollectSpill() {
  // The GC mutex is taken BEFORE any stripe lock (lock-order protocol) and
  // held across the whole sweep: no spill can commit between the keep-set
  // snapshot below and the store's delete pass, so the keep-set can never
  // under-approximate and reap a freshly spilled blob.
  std::lock_guard<std::mutex> gc(*gc_mu_);
  std::set<std::string> spilled;
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    for (const auto& [key, shard] : stripe->shards) {
      if (!shard.live) spilled.insert(key);
    }
  }
  return options_.spill_store->GarbageCollect(spilled);
}

std::vector<std::string> ShardManager::Keys() const {
  std::vector<std::string> keys;
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    for (const auto& [key, shard] : stripe->shards) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

ObjectiveEngine* ShardManager::shard(const std::string& key) {
  Stripe& stripe = StripeOf(key);
  Shard* shard = nullptr;
  {
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    shard = RouteLocked(stripe, key, /*create_missing=*/false,
                        clock_.load(std::memory_order_relaxed));
    if (shard == nullptr) return nullptr;
    ++shard->pins;
    ++stripe.ops;
  }
  ObjectiveEngine* window = nullptr;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    if (EnsureLiveHeld(key, shard).ok()) window = shard->live.get();
  }
  {
    std::lock_guard<std::shared_mutex> stripe_lock(stripe.mu);
    --shard->pins;
  }
  EnforceLiveCap(&key);
  return window;
}

const ObjectiveEngine* ShardManager::shard(const std::string& key) const {
  Stripe& stripe = StripeOf(key);
  std::shared_lock<std::shared_mutex> stripe_lock(stripe.mu);
  auto it = stripe.shards.find(key);
  return it == stripe.shards.end() ? nullptr : it->second.live.get();
}

size_t ShardManager::shard_count() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    total += stripe->shards.size();
  }
  return total;
}

size_t ShardManager::live_shard_count() const {
  return live_count_.load(std::memory_order_relaxed);
}

size_t ShardManager::spilled_shard_count() const {
  // Two relaxed reads; exact when quiescent, approximate under races (like
  // every fleet-wide count here).
  const size_t total = shard_count();
  const size_t live = live_count_.load(std::memory_order_relaxed);
  return total > live ? total - live : 0;
}

std::vector<int64_t> ShardManager::StripeOps() const {
  std::vector<int64_t> ops;
  ops.reserve(stripes_.size());
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    ops.push_back(stripe->ops);
  }
  return ops;
}

std::vector<int64_t> ShardManager::StripePins() const {
  std::vector<int64_t> pins;
  pins.reserve(stripes_.size());
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    int64_t total = 0;
    for (const auto& [key, shard] : stripe->shards) total += shard.pins;
    pins.push_back(total);
  }
  return pins;
}

void ShardManager::FanOut(int64_t count,
                          const std::function<void(int64_t)>& fn) {
  ThreadPool* pool = Pool();
  if (pool == nullptr || count < 2) {
    for (int64_t i = 0; i < count; ++i) fn(i);
  } else {
    pool->ParallelFor(count, fn);
  }
}

MemoryStats ShardManager::TotalMemory() const {
  // Same stable-entry snapshot as dirty_shard_count: collect under the
  // stripe locks, read each shard under its own.
  std::vector<const Shard*> snapshot;
  for (const auto& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> stripe_lock(stripe->mu);
    for (const auto& [key, shard] : stripe->shards) snapshot.push_back(&shard);
  }
  MemoryStats stats;
  for (const Shard* shard : snapshot) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    if (shard->live) stats += shard->live->Memory();
  }
  return stats;
}

}  // namespace serving
}  // namespace fkc
