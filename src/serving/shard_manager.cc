#include "serving/shard_manager.h"

#include <sstream>

#include "common/checkpoint_io.h"
#include "common/logging.h"

namespace fkc {
namespace serving {
namespace {

constexpr const char* kMagic = "fkc-shards-v1";

// Shard keys travel as length-prefixed raw segments in the fleet checkpoint
// (CheckpointReader::NextRaw); this cap keeps write and read sides agreeing
// on what a plausible key is, so CheckpointAll can never emit a blob that
// Restore rejects.
constexpr size_t kMaxKeyBytes = 1u << 20;

}  // namespace

ShardManager::ShardManager(ShardManagerOptions options,
                           ColorConstraint constraint, const Metric* metric,
                           const FairCenterSolver* solver)
    : options_(std::move(options)),
      constraint_(std::move(constraint)),
      metric_(metric),
      solver_(solver) {
  FKC_CHECK(metric_ != nullptr);
  FKC_CHECK(solver_ != nullptr);
  // Shards run sequentially inside their manager-pool task; nesting pools
  // would oversubscribe and buys nothing (shard fan-out already covers the
  // cores).
  options_.window.num_threads = 1;
}

ThreadPool* ShardManager::Pool() {
  if (options_.num_threads == 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_->size() > 1 ? pool_.get() : nullptr;
}

FairCenterSlidingWindow& ShardManager::GetOrCreate(const std::string& key) {
  FKC_CHECK_LT(key.size(), kMaxKeyBytes)
      << "shard key exceeds the checkpointable size";
  auto it = shards_.find(key);
  if (it == shards_.end()) {
    it = shards_
             .emplace(key, FairCenterSlidingWindow(options_.window,
                                                   constraint_, metric_,
                                                   solver_))
             .first;
  }
  return it->second;
}

void ShardManager::Ingest(const std::string& key, Point p) {
  GetOrCreate(key).Update(std::move(p));
}

void ShardManager::IngestBatch(std::vector<KeyedPoint> batch) {
  if (batch.empty()) return;
  // Group by key, preserving per-key arrival order (the only order that
  // matters: shards share no state, so cross-key interleaving is
  // unobservable).
  std::map<std::string, std::vector<Point>> groups;
  for (KeyedPoint& kp : batch) {
    groups[kp.key].push_back(std::move(kp.point));
  }

  // Create missing shards up front: the map must not mutate under the
  // fan-out.
  std::vector<std::pair<FairCenterSlidingWindow*, std::vector<Point>*>> work;
  work.reserve(groups.size());
  for (auto& [key, points] : groups) {
    work.emplace_back(&GetOrCreate(key), &points);
  }

  ThreadPool* pool = Pool();
  if (pool == nullptr || work.size() < 2) {
    for (auto& [shard, points] : work) {
      shard->UpdateBatch(std::move(*points));
    }
    return;
  }
  pool->ParallelFor(static_cast<int64_t>(work.size()), [&](int64_t i) {
    work[i].first->UpdateBatch(std::move(*work[i].second));
  });
}

Result<FairCenterSolution> ShardManager::Query(const std::string& key,
                                               QueryStats* stats) {
  auto it = shards_.find(key);
  if (it == shards_.end()) {
    return Status::NotFound("no shard for key '" + key + "'");
  }
  return it->second.Query(stats);
}

std::vector<ShardAnswer> ShardManager::QueryAll() {
  std::vector<ShardAnswer> answers;
  answers.reserve(shards_.size());
  std::vector<FairCenterSlidingWindow*> windows;
  windows.reserve(shards_.size());
  for (auto& [key, shard] : shards_) {  // ascending key order
    ShardAnswer answer;
    answer.key = key;
    answers.push_back(std::move(answer));
    windows.push_back(&shard);
  }

  auto run_one = [&](int64_t i) {
    answers[i].solution = windows[i]->Query(&answers[i].stats);
  };
  ThreadPool* pool = Pool();
  if (pool == nullptr || windows.size() < 2) {
    for (size_t i = 0; i < windows.size(); ++i) run_one(static_cast<int64_t>(i));
  } else {
    pool->ParallelFor(static_cast<int64_t>(windows.size()), run_one);
  }
  return answers;
}

std::string ShardManager::CheckpointAll() const {
  std::ostringstream out;
  out << kMagic << ' ';

  // The window template (needed to spawn shards for keys first seen after a
  // restore) and the constraint. num_threads is an execution knob and is
  // deliberately excluded, like in the core checkpoint.
  const SlidingWindowOptions& w = options_.window;
  out << w.window_size << ' ';
  WriteCheckpointDouble(&out, w.beta);
  WriteCheckpointDouble(&out, w.delta);
  out << static_cast<int>(w.variant) << ' ' << (w.adaptive_range ? 1 : 0)
      << ' ';
  WriteCheckpointDouble(&out, w.d_min);
  WriteCheckpointDouble(&out, w.d_max);
  out << w.adaptive_slack_exponents << ' '
      << (w.warm_start_new_guesses ? 1 : 0) << ' ';

  out << constraint_.ell() << ' ';
  for (int cap : constraint_.caps()) out << cap << ' ';

  // Every shard: length-prefixed key, length-prefixed core checkpoint.
  out << shards_.size() << ' ';
  for (const auto& [key, shard] : shards_) {
    WriteCheckpointRaw(&out, key);
    WriteCheckpointRaw(&out, shard.SerializeState());
  }
  return out.str();
}

Result<ShardManager> ShardManager::Restore(const std::string& bytes,
                                           const Metric* metric,
                                           const FairCenterSolver* solver,
                                           int num_threads) {
  CheckpointReader cursor(bytes);
  std::string magic;
  FKC_RETURN_IF_ERROR(cursor.NextToken(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not an fkc shard checkpoint (bad magic '" +
                                   magic + "')");
  }

  ShardManagerOptions options;
  options.num_threads = num_threads;
  SlidingWindowOptions& w = options.window;
  int64_t variant = 0, adaptive = 0, slack = 0, warm = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&w.window_size));
  FKC_RETURN_IF_ERROR(cursor.NextDouble(&w.beta));
  FKC_RETURN_IF_ERROR(cursor.NextDouble(&w.delta));
  FKC_RETURN_IF_ERROR(cursor.NextInt(&variant));
  FKC_RETURN_IF_ERROR(cursor.NextInt(&adaptive));
  FKC_RETURN_IF_ERROR(cursor.NextDouble(&w.d_min));
  FKC_RETURN_IF_ERROR(cursor.NextDouble(&w.d_max));
  FKC_RETURN_IF_ERROR(cursor.NextInt(&slack));
  FKC_RETURN_IF_ERROR(cursor.NextInt(&warm));
  if (variant < 0 || variant > 1) {
    return Status::InvalidArgument("bad variant in shard checkpoint");
  }
  w.variant = static_cast<CoreVariant>(variant);
  w.adaptive_range = adaptive != 0;
  w.adaptive_slack_exponents = static_cast<int>(slack);
  w.warm_start_new_guesses = warm != 0;

  int64_t ell = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&ell));
  if (ell < 1 || ell > (1 << 20)) {
    return Status::InvalidArgument("implausible color count in checkpoint");
  }
  std::vector<int> caps(static_cast<size_t>(ell));
  for (int& cap : caps) {
    int64_t value = 0;
    FKC_RETURN_IF_ERROR(cursor.NextInt(&value));
    if (value < 0) {
      return Status::InvalidArgument("negative cap in shard checkpoint");
    }
    cap = static_cast<int>(value);
  }

  ShardManager manager(options, ColorConstraint(std::move(caps)), metric,
                       solver);

  int64_t shard_count = 0;
  FKC_RETURN_IF_ERROR(cursor.NextInt(&shard_count));
  if (shard_count < 0 || shard_count > (1 << 24)) {
    return Status::InvalidArgument("implausible shard count in checkpoint");
  }
  for (int64_t s = 0; s < shard_count; ++s) {
    std::string key, blob;
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&key, kMaxKeyBytes));
    FKC_RETURN_IF_ERROR(cursor.NextRaw(&blob));
    auto window =
        FairCenterSlidingWindow::DeserializeState(blob, metric, solver);
    if (!window.ok()) return window.status();
    manager.shards_.emplace(std::move(key), std::move(window).value());
  }
  return manager;
}

std::vector<std::string> ShardManager::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) keys.push_back(key);
  return keys;
}

FairCenterSlidingWindow* ShardManager::shard(const std::string& key) {
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : &it->second;
}

const FairCenterSlidingWindow* ShardManager::shard(
    const std::string& key) const {
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : &it->second;
}

MemoryStats ShardManager::TotalMemory() const {
  MemoryStats stats;
  for (const auto& [key, shard] : shards_) stats += shard.Memory();
  return stats;
}

}  // namespace serving
}  // namespace fkc
