// Sharded multi-window serving front-end: one process, many independent
// sliding windows (per tenant, per sensor, per data stream), all driven
// through one shared thread pool.
//
// Each shard is a full FairCenterSlidingWindow keyed by an opaque string.
// Shards share no state, so ingest batches and query multiplexing fan out
// across the pool with bit-identical per-shard results at any thread count —
// the same determinism contract as the core engine.
//
// Multi-tenant hardening on top of the basic routing:
//   * per-tenant options: a tenant key may carry its own SlidingWindowOptions
//     (window size, delta, beta, variant) applied when its shard is created;
//     overrides travel in the fleet checkpoint.
//   * bounded residency: EvictIdle(ttl) spills shards nobody has touched
//     (ingest or per-key query) for ttl arrivals fleet-wide, and an
//     optional LRU cap bounds the number of live shards;
//     a spilled shard is checkpointed into the configured SpillStore
//     (in-memory by default, on-disk via FileSpillStore — see
//     serving/spill_store.h) and transparently rehydrated on its next
//     touch, answering exactly as if it had never left.
//   * incremental checkpointing: every shard carries a dirty bit (set on
//     ingest, cleared on checkpoint); CheckpointDelta() serializes only the
//     dirty shards and ApplyDelta() folds such a delta into a fleet restored
//     from the matching base — steady-state fleets ship deltas, not the
//     whole blob. Full checkpoints use the fkc-shards-v2 format; Restore
//     still accepts v1 blobs from earlier builds. DeltaLog
//     (serving/delta_log.h) turns the delta stream into a replayable,
//     self-compacting log.
//   * background maintenance: StartMaintenance(options) runs the eviction
//     sweep, DeltaLog capture, and spill-store GC on a timer thread instead
//     of caller-driven; StopMaintenance() (also run by the destructor)
//     joins it cleanly. While maintenance runs, the manager's public
//     methods are safe to call concurrently — each is internally
//     serialized by one mutex.
//
// Malformed input is rejected, never fatal: oversized keys, out-of-range or
// zero-cap colors, empty or non-finite coordinates, and dimension changes
// within a shard's stream all fail with kInvalidArgument (dropping only the
// offending arrivals) — each of those would otherwise CHECK-abort the
// process downstream or poison the next checkpoint into one Restore
// rejects. Corrupted or truncated checkpoint blobs (including shard blobs
// whose embedded constraint disagrees with the fleet's) fail
// Restore/ApplyDelta with a non-OK Status instead of aborting the process,
// and a failing spill backend (disk full, checksum mismatch) surfaces as a
// Status too — an unspillable shard simply stays live.
#ifndef FKC_SERVING_SHARD_MANAGER_H_
#define FKC_SERVING_SHARD_MANAGER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/fair_center_sliding_window.h"
#include "serving/spill_store.h"

namespace fkc {
namespace serving {

class DeltaLog;

/// An arrival addressed to one shard.
struct KeyedPoint {
  std::string key;
  Point point;
};

/// Configuration of the serving layer.
struct ShardManagerOptions {
  /// Template for every shard's sliding window (tenants without an override
  /// use it verbatim). The per-shard `num_threads` is forced to 1:
  /// parallelism lives at the manager level (one pool fanned across
  /// shards), never nested inside a shard.
  SlidingWindowOptions window;

  /// Worker threads of the shared pool multiplexing ingest and queries over
  /// the shards. 1 = fully sequential; 0 = hardware concurrency. An
  /// execution knob: results are bit-identical at any value and it is not
  /// part of the checkpoint.
  int num_threads = 1;

  /// Upper bound on simultaneously live (in-memory) shards; 0 = unlimited.
  /// When a create or rehydration would exceed it, the least-recently
  /// touched live shard is spilled. Enforced between ingest batches, so a
  /// single batch touching more distinct keys than the cap still works. A
  /// resource knob, not state: it is not checkpointed.
  int64_t max_live_shards = 0;

  /// Backend holding evicted-shard state. nullptr = a private
  /// InMemorySpillStore (the historical behaviour). Pass a FileSpillStore
  /// to bound resident memory by the live-shard cap regardless of fleet
  /// size. A resource knob, not state: it is not checkpointed.
  std::shared_ptr<SpillStore> spill_store;
};

/// What one maintenance tick did. Delivered to the on_tick test hook and
/// returned by RunMaintenanceTick.
struct MaintenanceTickReport {
  int64_t tick = 0;          ///< 1-based tick counter (across Start cycles)
  int64_t evicted = 0;       ///< shards spilled by the eviction sweep
  int64_t gc_removed = 0;    ///< spill-store entries removed by GC
  size_t capture_bytes = 0;  ///< delta (or rebase) bytes appended to the log
  bool rebased = false;      ///< the DeltaLog re-based this tick
  Status status;             ///< first error of the tick (OK when clean)
};

/// Schedule of the background maintenance thread.
struct MaintenanceOptions {
  /// Time between ticks. The thread wakes early on StopMaintenance, so
  /// shutdown never waits out a cadence.
  std::chrono::milliseconds cadence{1000};

  /// TTL handed to the per-tick EvictIdle sweep; negative = no sweep.
  int64_t idle_ttl = -1;

  /// When set, every tick captures into this log (CheckpointDelta while the
  /// chain budget holds, re-base otherwise — see DeltaLog). The log must
  /// outlive the maintenance run. Ticks with zero dirty shards skip the
  /// capture entirely. The per-shard dirty bit is a SINGLE-CONSUMER
  /// cursor: while a log captures on a cadence, nothing else may call
  /// CheckpointDelta/CheckpointAll on the same manager — a direct call
  /// marks shards clean and the log's next delta silently omits them.
  DeltaLog* delta_log = nullptr;

  /// Run spill-store GarbageCollect every this many ticks (0 = never).
  int64_t gc_every = 0;

  /// Test-visible tick hook, called after each tick outside the manager's
  /// internal lock (so it may call back into the manager).
  std::function<void(const MaintenanceTickReport&)> on_tick;
};

/// Per-shard answer of a fan-out query.
struct ShardAnswer {
  std::string key;
  Result<FairCenterSolution> solution = FairCenterSolution{};
  QueryStats stats;
};

/// Owns and serves N independent sliding windows keyed by tenant/sensor id.
///
/// Typical use:
///   ShardManager manager(options, constraint, &metric, &solver);
///   manager.SetTenantOptions("tenant-7", small_window);  // optional
///   manager.IngestBatch(keyed_arrivals);       // routed + fanned out
///   auto answer = manager.Query("tenant-7");   // one shard
///   auto all = manager.QueryAll();             // every shard, multiplexed
///   manager.EvictIdle(100000);                 // spill idle tenants
///   auto delta = manager.CheckpointDelta();    // dirty shards only
///   auto blob = manager.CheckpointAll();       // the whole fleet
///   auto restored = ShardManager::Restore(blob.value(), &metric, &solver);
///
/// Thread-safety: every public method is internally serialized by one
/// mutex, so the background maintenance thread (and any other caller) can
/// interleave with ingest and queries. Compound caller sequences are not
/// atomic, and pointers returned by shard() may be invalidated by a
/// maintenance tick — stop maintenance (or drive ticks manually via
/// RunMaintenanceTick) around code that retains shard pointers. Do not
/// move a manager whose maintenance thread is running.
class ShardManager {
 public:
  /// `metric` and `solver` must outlive the manager; they are shared by all
  /// shards (code, not state). Arrivals whose color has a zero cap are
  /// rejected at ingest (a single window CHECK-aborts on them instead).
  ShardManager(ShardManagerOptions options, ColorConstraint constraint,
               const Metric* metric, const FairCenterSolver* solver);
  ~ShardManager();  ///< stops the maintenance thread, if running

  ShardManager(ShardManager&& other) noexcept;
  ShardManager& operator=(ShardManager&& other) noexcept;

  /// Feeds one arrival to the shard of `key`, creating (or rehydrating) the
  /// shard on first sight. Per-shard clocks are independent: each shard
  /// sees its own arrivals as one logical time step each. Fails with
  /// kInvalidArgument — consuming nothing — for an oversized key, an
  /// out-of-range or zero-cap color, empty or non-finite coordinates, or a
  /// dimension differing from the shard's earlier arrivals (the first
  /// accepted arrival pins it); other tenants are unaffected.
  Status Ingest(const std::string& key, Point p);

  /// Routes a batch of keyed arrivals: groups by key (preserving per-key
  /// arrival order), creates/rehydrates missing shards, then fans the
  /// per-shard groups out over the pool, each shard consuming its group
  /// through the core UpdateBatch engine. Equivalent to calling Ingest per
  /// arrival in order. Invalid arrivals (oversized key, out-of-range or
  /// zero-cap color, empty/non-finite coordinates, dimension mismatch) are
  /// dropped individually — every valid arrival in the batch is still
  /// consumed — and reported through a kInvalidArgument status describing
  /// the first offender and the drop count.
  Status IngestBatch(std::vector<KeyedPoint> batch);

  /// Registers per-tenant options applied when `key`'s shard is created;
  /// until then the fleet template applies to everyone else. Must be called
  /// before the tenant's first arrival (kFailedPrecondition once the shard
  /// exists — options are fixed at creation, like the core's). Overrides
  /// identical to the template are not stored. `options.num_threads` is
  /// ignored (forced to 1). Overrides travel in v2 fleet checkpoints, so a
  /// restored manager applies them to tenants first seen after the restore.
  Status SetTenantOptions(const std::string& key, SlidingWindowOptions options);

  /// The override registered for `key`, or nullptr if the tenant uses the
  /// fleet template. The pointer is invalidated by SetTenantOptions,
  /// ApplyDelta, and destruction.
  const SlidingWindowOptions* TenantOptions(const std::string& key) const;

  /// Queries one shard, transparently rehydrating it if spilled. Fails with
  /// kNotFound for an unknown key.
  Result<FairCenterSolution> Query(const std::string& key,
                                   QueryStats* stats = nullptr);

  /// Queries every shard — live and spilled — multiplexed over the pool
  /// (each shard's query pipeline runs sequentially inside its task).
  /// Spilled shards are answered from an ephemeral deserialization without
  /// changing their residency, so a fleet-wide dashboard query does not
  /// defeat eviction. Answers are ordered by key, deterministically. A
  /// spilled shard whose blob fails to load answers with that error.
  std::vector<ShardAnswer> QueryAll();

  /// Spills every live shard whose last touch is more than `idle_ttl`
  /// ticks ago, where the manager clock ticks once per ingested arrival
  /// fleet-wide. A touch is an ingest, a per-key Query, or shard() — a
  /// shard a dashboard keeps querying stays live even without arrivals
  /// (spilling it would only thrash rehydration); QueryAll's ephemeral
  /// reads deliberately do not touch. A spilled shard keeps answering
  /// (QueryAll) and is rehydrated in place by its next touch. Returns the
  /// number of shards spilled. idle_ttl = 0 spills everything not touched
  /// at the current clock; negative is a no-op. If the spill backend fails
  /// the sweep stops early (the shard stays live, nothing is lost) and the
  /// error is reported through `spill_status` when provided.
  int64_t EvictIdle(int64_t idle_ttl, Status* spill_status = nullptr);

  /// Serializes the fleet — template, constraint, tenant overrides, and
  /// every shard (live or spilled) — into one self-describing v2 blob, and
  /// marks every shard clean. Spilled shards are written from their spill
  /// blob without rehydration; a spill blob that fails to load fails the
  /// whole checkpoint (leaving every dirty bit as it was — the next
  /// delta loses nothing).
  Result<std::string> CheckpointAll();

  /// Serializes only the shards dirtied since the last CheckpointAll /
  /// CheckpointDelta (plus the constraint and override table, which are
  /// cheap), and marks them clean. Applying the sequence of deltas, in
  /// order, onto a manager restored from the matching base reproduces the
  /// full fleet state. An idle fleet yields an empty delta (zero shards).
  Result<std::string> CheckpointDelta();

  /// Folds a CheckpointDelta blob into this manager: replaces the override
  /// table and upserts every contained shard as live-and-clean. Validates
  /// everything before mutating anything — on a non-OK return the manager
  /// is unchanged. The delta's constraint must match this manager's.
  Status ApplyDelta(const std::string& bytes);

  /// Reconstructs a manager from CheckpointAll output — v2 or the earlier
  /// v1 format. The restored fleet answers every query identically and
  /// behaves identically under any future ingest sequence. Shards come
  /// back live until `max_live_shards` is reached; past the cap the
  /// verbatim blob segment is handed to the spill store directly (never
  /// deserialized-then-reserialized), so a fleet far larger than the cap
  /// restores without ever being fully resident. `num_threads`,
  /// `max_live_shards`, and `spill_store` are execution/resource knobs
  /// supplied at restore time, like the metric and solver. Corrupted,
  /// truncated, or implausible blobs fail with kInvalidArgument, never a
  /// process abort.
  static Result<ShardManager> Restore(
      const std::string& bytes, const Metric* metric,
      const FairCenterSolver* solver, int num_threads = 1,
      int64_t max_live_shards = 0,
      std::shared_ptr<SpillStore> spill_store = nullptr);

  // --- Background maintenance. ---

  /// Spawns the maintenance thread: every `options.cadence` it runs one
  /// RunMaintenanceTick(options). kFailedPrecondition if already running,
  /// kInvalidArgument for a non-positive cadence. Start/Stop/
  /// maintenance_running are serialized against each other by a dedicated
  /// admin mutex (not `mu_` — Stop must not block behind an in-flight
  /// tick it is about to join).
  Status StartMaintenance(MaintenanceOptions options);

  /// Joins the maintenance thread; prompt (wakes the thread mid-sleep) and
  /// idempotent — concurrent Stops are safe. Any tick already executing
  /// finishes first. Calling it from inside an on_tick hook (i.e. on the
  /// maintenance thread itself) cannot join: it signals the loop to exit
  /// after the current tick and returns immediately; a later Stop — or
  /// the destructor — on any other thread reaps the finished thread.
  void StopMaintenance();

  bool maintenance_running() const;
  /// Ticks executed so far, across StartMaintenance cycles and manual
  /// RunMaintenanceTick calls.
  int64_t maintenance_ticks() const { return maintenance_ticks_.load(); }

  /// Runs one maintenance tick synchronously on the calling thread:
  /// eviction sweep (options.idle_ttl >= 0), DeltaLog capture
  /// (options.delta_log, skipped while no shard is dirty), spill-store GC
  /// (every options.gc_every ticks). The deterministic alternative to the
  /// timer for tests and single-threaded drivers; the timer thread calls
  /// exactly this. Composed of the ordinary locked public operations — the
  /// tick as a whole is not atomic against concurrent callers.
  MaintenanceTickReport RunMaintenanceTick(const MaintenanceOptions& options);

  /// Removes spill-store entries no longer backing a spilled shard, plus
  /// temp-file debris from interrupted writes. Returns entries removed.
  /// Cheap for the in-memory store; a directory scan for the file store.
  Result<int64_t> GarbageCollectSpill();

  /// Shard keys — live and spilled — in deterministic (lexicographic)
  /// order.
  std::vector<std::string> Keys() const;

  /// Direct access to one shard, transparently rehydrating it if spilled
  /// (nullptr for an unknown key or a spill blob that fails to load). The
  /// manager retains ownership. When `max_live_shards` is set, any later
  /// mutating access (Ingest, IngestBatch, Query, shard, EvictIdle,
  /// ApplyDelta) — or a concurrent maintenance tick — may spill the
  /// pointed-to window: use the pointer before the next manager call, and
  /// not while the maintenance thread runs.
  FairCenterSlidingWindow* shard(const std::string& key);
  /// Const access never changes residency: returns nullptr for spilled as
  /// well as unknown keys.
  const FairCenterSlidingWindow* shard(const std::string& key) const;

  /// All shards the manager knows, live + spilled.
  size_t shard_count() const;
  size_t live_shard_count() const;
  size_t spilled_shard_count() const;
  /// Shards a CheckpointDelta() would serialize right now.
  size_t dirty_shard_count() const;

  /// Fleet-wide arrival count — the clock EvictIdle's TTL is measured in.
  int64_t clock() const;
  /// Lifetime spill / rehydration totals (EvictIdle + LRU-cap spills;
  /// ephemeral QueryAll reads of spilled shards count as neither).
  int64_t evictions() const;
  int64_t rehydrations() const;

  /// Stored-point totals of the live (resident) shards — the paper's memory
  /// unit, here doubling as the resident-memory gauge eviction exists to
  /// bound. Spilled shards hold their points in serialized form only.
  MemoryStats TotalMemory() const;

  const ShardManagerOptions& options() const { return options_; }
  const ColorConstraint& constraint() const { return constraint_; }
  SpillStore* spill_store() const { return options_.spill_store.get(); }

 private:
  /// One tenant's slot: a live window, or (live == nullptr) its serialized
  /// state parked in the spill store under the tenant key.
  struct Shard {
    std::unique_ptr<FairCenterSlidingWindow> live;  ///< null when spilled
    bool spill_dirty = false;  ///< spilled state not yet in a fleet blob
    /// Live shards: state_epoch() at the last fleet checkpoint;
    /// kNeverCheckpointed marks dirty-since-birth (or since a dirty spill
    /// was rehydrated, which resets the window's epoch counter).
    int64_t clean_epoch = kNeverCheckpointed;
    int64_t last_touch = 0;  ///< manager clock at the last touch
    /// Coordinate dimension pinned by the first accepted arrival (or the
    /// restored state); -1 until then. Kept outside the window so a
    /// mismatched arrival is rejected without rehydrating a spilled shard.
    int64_t dim = -1;
  };

  /// Timer-thread state; heap-allocated so the manager stays movable while
  /// no thread is running.
  struct MaintenanceState;

  static constexpr int64_t kNeverCheckpointed = -1;

  bool IsDirty(const Shard& shard) const;
  size_t DirtyCountLocked() const;
  int64_t EvictIdleLocked(int64_t idle_ttl, Status* spill_status);
  /// The offending-arrival checks shared by Ingest and IngestBatch:
  /// everything the core engine would CHECK-abort on, or that the
  /// checkpoint reader would later refuse to restore. `pinned_dim` is the
  /// dimension the arrival must have (-1 = not pinned yet).
  Status ValidateArrival(const std::string& key, const Point& p,
                         int64_t pinned_dim) const;
  /// `key`'s pinned coordinate dimension, or -1 for unknown keys.
  int64_t PinnedDimension(const std::string& key) const;
  /// Template or override for `key`, num_threads forced to 1.
  SlidingWindowOptions OptionsForKey(const std::string& key) const;
  /// Finds `key`'s shard, rehydrating a spilled one and (optionally)
  /// creating a missing one; refreshes last_touch. On success the shard is
  /// live. `enforce_cap` runs the LRU cap afterwards, never spilling `key`
  /// itself — batch paths pass false and enforce once after the fan-out.
  Result<Shard*> TouchShard(const std::string& key, bool create_missing,
                            bool enforce_cap);
  /// Sets a live shard's last_touch, keeping the LRU index in sync.
  void TouchLive(const std::string& key, Shard* shard, int64_t touch);
  Status RehydrateShard(const std::string& key, Shard* shard);
  /// Serializes the live window into the spill store and drops it. On a
  /// backend failure the shard stays live and untouched.
  Status SpillShard(const std::string& key, Shard* shard);
  /// Spills least-recently-touched live shards (ties broken by smaller
  /// key, deterministically — the LRU index order) until the cap holds.
  /// `exclude` (may be null) is never spilled. Best-effort: a failing
  /// spill backend leaves the victim live and stops enforcing.
  void EnforceLiveCap(const std::string* exclude);
  ThreadPool* Pool();
  /// `state` is passed explicitly: StopMaintenance detaches the state from
  /// the manager (under the admin mutex) before joining, so the loop must
  /// not read the member it was started from.
  void MaintenanceLoop(MaintenanceState* state);

  ShardManagerOptions options_;
  ColorConstraint constraint_;
  const Metric* metric_;
  const FairCenterSolver* solver_;

  /// Serializes every public operation; via unique_ptr so the manager
  /// stays movable (the moved-from shell is destroy-only).
  std::unique_ptr<std::mutex> mu_;

  /// Per-tenant option overrides, applied at shard creation.
  std::map<std::string, SlidingWindowOptions> overrides_;

  /// Shards keyed by tenant id; std::map for deterministic iteration.
  std::map<std::string, Shard> shards_;
  size_t live_count_ = 0;

  /// (last_touch, key) of every live shard: the LRU victim is begin(), so
  /// cap enforcement is O(log n) per eviction instead of a scan over the
  /// whole fleet. Maintained by TouchLive / SpillShard.
  std::set<std::pair<int64_t, std::string>> live_lru_;

  /// Lazily created shared pool (nullptr while sequential) and its
  /// resolved effective size (-1 = not yet resolved).
  std::unique_ptr<ThreadPool> pool_;
  int pool_threads_ = -1;

  /// Guards maintenance_ lifecycle (Start/Stop/running); never held while
  /// joining, so a hook's re-entrant Stop cannot deadlock the join.
  std::unique_ptr<std::mutex> maintenance_admin_mu_;
  std::unique_ptr<MaintenanceState> maintenance_;
  std::atomic<int64_t> maintenance_ticks_{0};

  int64_t clock_ = 0;
  int64_t evictions_ = 0;
  int64_t rehydrations_ = 0;
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_SHARD_MANAGER_H_
