// Sharded multi-window serving front-end: one process, many independent
// sliding windows (per tenant, per sensor, per data stream), all driven
// through one shared thread pool.
//
// Each shard is a full FairCenterSlidingWindow keyed by an opaque string.
// Shards share no state, so ingest batches and query multiplexing fan out
// across the pool with bit-identical per-shard results at any thread count —
// the same determinism contract as the core engine. The whole fleet
// checkpoints into a single self-describing blob (every shard through the
// core's SerializeState) and restores into an identically answering manager.
#ifndef FKC_SERVING_SHARD_MANAGER_H_
#define FKC_SERVING_SHARD_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/fair_center_sliding_window.h"

namespace fkc {
namespace serving {

/// An arrival addressed to one shard.
struct KeyedPoint {
  std::string key;
  Point point;
};

/// Configuration of the serving layer.
struct ShardManagerOptions {
  /// Template for every shard's sliding window. The per-shard `num_threads`
  /// is forced to 1: parallelism lives at the manager level (one pool fanned
  /// across shards), never nested inside a shard.
  SlidingWindowOptions window;

  /// Worker threads of the shared pool multiplexing ingest and queries over
  /// the shards. 1 = fully sequential; 0 = hardware concurrency. An
  /// execution knob: results are bit-identical at any value and it is not
  /// part of the checkpoint.
  int num_threads = 1;
};

/// Per-shard answer of a fan-out query.
struct ShardAnswer {
  std::string key;
  Result<FairCenterSolution> solution = FairCenterSolution{};
  QueryStats stats;
};

/// Owns and serves N independent sliding windows keyed by tenant/sensor id.
///
/// Typical use:
///   ShardManager manager(options, constraint, &metric, &solver);
///   manager.IngestBatch(keyed_arrivals);       // routed + fanned out
///   auto answer = manager.Query("tenant-7");   // one shard
///   auto all = manager.QueryAll();             // every shard, multiplexed
///   std::string blob = manager.CheckpointAll();
///   auto restored = ShardManager::Restore(blob, &metric, &solver);
class ShardManager {
 public:
  /// `metric` and `solver` must outlive the manager; they are shared by all
  /// shards (code, not state). Every color in any stream must have a
  /// positive cap, exactly as for a single window.
  ShardManager(ShardManagerOptions options, ColorConstraint constraint,
               const Metric* metric, const FairCenterSolver* solver);

  /// Feeds one arrival to the shard of `key`, creating the shard on first
  /// sight. Per-shard clocks are independent: each shard sees its own
  /// arrivals as one logical time step each.
  void Ingest(const std::string& key, Point p);

  /// Routes a batch of keyed arrivals: groups by key (preserving per-key
  /// arrival order), creates missing shards, then fans the per-shard groups
  /// out over the pool, each shard consuming its group through the core
  /// UpdateBatch engine. Equivalent to calling Ingest per arrival in order.
  void IngestBatch(std::vector<KeyedPoint> batch);

  /// Queries one shard. Fails with kNotFound for an unknown key.
  Result<FairCenterSolution> Query(const std::string& key,
                                   QueryStats* stats = nullptr);

  /// Queries every shard, multiplexed over the pool (each shard's query
  /// pipeline runs sequentially inside its task). Answers are ordered by
  /// key, deterministically.
  std::vector<ShardAnswer> QueryAll();

  /// Serializes the manager — the window template, constraint, and every
  /// shard via the core SerializeState — into one self-describing blob.
  std::string CheckpointAll() const;

  /// Reconstructs a manager from CheckpointAll output. The restored fleet
  /// answers every query identically and behaves identically under any
  /// future ingest sequence. `num_threads` is an execution knob supplied at
  /// restore time, like the metric and solver.
  static Result<ShardManager> Restore(const std::string& bytes,
                                      const Metric* metric,
                                      const FairCenterSolver* solver,
                                      int num_threads = 1);

  /// Shard keys in deterministic (lexicographic) order.
  std::vector<std::string> Keys() const;

  /// Direct access to one shard (nullptr for an unknown key). The manager
  /// retains ownership.
  FairCenterSlidingWindow* shard(const std::string& key);
  const FairCenterSlidingWindow* shard(const std::string& key) const;

  size_t shard_count() const { return shards_.size(); }

  /// Stored-point totals across the fleet (the paper's memory unit).
  MemoryStats TotalMemory() const;

  const ShardManagerOptions& options() const { return options_; }
  const ColorConstraint& constraint() const { return constraint_; }

 private:
  FairCenterSlidingWindow& GetOrCreate(const std::string& key);
  ThreadPool* Pool();

  ShardManagerOptions options_;
  ColorConstraint constraint_;
  const Metric* metric_;
  const FairCenterSolver* solver_;

  /// Shards keyed by tenant id; std::map for deterministic iteration.
  std::map<std::string, FairCenterSlidingWindow> shards_;

  /// Lazily created shared pool (nullptr while sequential).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_SHARD_MANAGER_H_
