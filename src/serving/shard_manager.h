// Sharded multi-window serving front-end: one process, many independent
// sliding windows (per tenant, per sensor, per data stream), all driven
// through one shared thread pool.
//
// Each shard is a full ObjectiveEngine (core/objective_engine.h) keyed by an
// opaque string. Shards share no state, so ingest batches and query
// multiplexing fan out across the pool with bit-identical per-shard results
// at any thread count — the same determinism contract as the core engine.
//
// The OBJECTIVE LAYER: shards are constructed through the objective factory
// (CreateObjectiveEngine), so one fleet can host mixed-objective tenants —
// fair-center dashboards beside k-median tenants on the same streams. The
// fleet default objective lives in ShardManagerOptions; per-tenant
// deviations are registered with SetTenantObjective before the tenant's
// first arrival, exactly like option overrides. The spill / delta /
// replication paths are untouched by the objective: they move each engine's
// self-describing blob opaquely, and restore paths cross-check the blob's
// own magic against the fleet's objective table, rejecting forged or
// mismatched tags with a Status, never an abort.
//
// Multi-tenant hardening on top of the basic routing:
//   * per-tenant options: a tenant key may carry its own SlidingWindowOptions
//     (window size, delta, beta, variant) applied when its shard is created;
//     overrides travel in the fleet checkpoint.
//   * bounded residency: EvictIdle(ttl) spills shards nobody has touched
//     (ingest or per-key query) for ttl arrivals fleet-wide, and an
//     optional LRU cap bounds the number of live shards;
//     a spilled shard is checkpointed into the configured SpillStore
//     (in-memory by default, on-disk via FileSpillStore — see
//     serving/spill_store.h) and transparently rehydrated on its next
//     touch, answering exactly as if it had never left.
//   * incremental checkpointing: every shard carries a dirty bit (set on
//     ingest, cleared on checkpoint); CheckpointDelta() serializes only the
//     dirty shards and ApplyDelta() folds such a delta into a fleet restored
//     from the matching base — steady-state fleets ship deltas, not the
//     whole blob. Full checkpoints use the fkc-shards-v2 format when every
//     tenant runs the default fair-center objective (so pure fair-center
//     fleets stay byte-identical to pre-objective builds) and fkc-shards-v3
//     — v2 plus the objective tag and per-tenant objective table — as soon
//     as any other objective is involved; Restore accepts v1/v2/v3 blobs
//     (v1/v2 restore unchanged, as all-fair-center). DeltaLog
//     (serving/delta_log.h) turns the delta stream into a replayable,
//     self-compacting log.
//   * background maintenance: StartMaintenance(options) runs the eviction
//     sweep, DeltaLog capture, and spill-store GC on a timer thread instead
//     of caller-driven; StopMaintenance() (also run by the destructor)
//     joins it cleanly.
//
// Concurrency model (striped routing + per-shard locks). The manager
// serializes nothing behind one big mutex; instead:
//
//   * The routing layer is split into N hash-partitioned STRIPES. Each
//     stripe owns its slice of the shard map, its slice of the per-tenant
//     override tables (options and objectives), its own LRU index of live
//     shards, and the pin counts of its shards — all guarded by that
//     stripe's reader-writer lock (std::shared_mutex), held only for map
//     lookups and bookkeeping mutations (plus shard construction), never
//     across a window update, a query, a (de)serialization, or spill-store
//     IO. Pure lookups (TenantOptions, Keys, counts, memory/pin gauges,
//     eviction candidate scans) take it SHARED and run concurrently;
//     anything that mutates stripe state — routing (it bumps LRU/ops and
//     pins), creation, residency commits, override registration — takes it
//     EXCLUSIVE. Ingest and shard creation on keys in different stripes
//     never touch the same lock. The fleet-wide clock and the lifetime
//     counters are plain atomics.
//   * Each shard owns a PER-SHARD mutex guarding its window's contents and
//     its dirty-tracking state. Ingest and per-key queries touch only the
//     shards they route to, so two tenants never contend.
//   * Fleet-wide reads (QueryAll, CheckpointAll, CheckpointDelta) take
//     EPOCH-SNAPSHOT semantics: they acquire ALL stripe locks in ascending
//     index order, collect a stable key-ordered vector of shard refs
//     pinned against eviction via a per-shard refcount (and, for
//     checkpoints, snapshot the override table beside it), release every
//     stripe, then visit shards one at a time under their own locks. The
//     all-stripes hold covers bookkeeping only, so it is brief; the fleet
//     scan itself blocks ingest to one shard at a time, never the fleet.
//     Checkpoint bytes are identical at EVERY stripe count (including 1):
//     shards and overrides are always emitted in ascending key order, so a
//     striped fleet checkpoints byte-equal to a serially built one.
//   * Eviction (EvictIdle and the LRU cap) try-locks its victims and
//     SKIPS busy or pinned shards instead of stalling the world; a spill
//     re-checks the pin count after writing to the store and aborts if a
//     reader pinned the shard in the meantime, so rehydration stays
//     bit-exact and the staged-commit checkpoint invariants hold.
//
//   Lock order: a per-shard mutex is only ever acquired blocking while no
//   stripe lock is held (shared or exclusive); a stripe lock may be
//   acquired while holding a shard lock (residency commits); multiple
//   stripe locks are only ever taken in ascending stripe-index order;
//   under a stripe lock, shard mutexes are only try_lock'ed (eviction).
//   Shared and exclusive modes of one stripe's lock rank identically in
//   the order — the mode changes contention, not the hierarchy. Spill-
//   store writes and GC are additionally serialized by a GC mutex so a
//   sweep can never reap a blob spilled after it snapshotted the keep-set.
//   Full order: shard mu -> gc_mu_ -> stripe mu (ascending).
//
// Compound caller sequences are still not atomic, and a fleet-wide
// operation concurrent with ingest sees each shard's state at the moment
// its lock is taken (per-shard atomicity, not a fleet-wide point in time).
//
// Malformed input is rejected, never fatal: oversized keys, out-of-range or
// zero-cap colors, empty or non-finite coordinates, and dimension changes
// within a shard's stream all fail with kInvalidArgument (dropping only the
// offending arrivals) — each of those would otherwise CHECK-abort the
// process downstream or poison the next checkpoint into one Restore
// rejects. Corrupted or truncated checkpoint blobs (including shard blobs
// whose embedded constraint disagrees with the fleet's) fail
// Restore/ApplyDelta with a non-OK Status instead of aborting the process,
// and a failing spill backend (disk full, checksum mismatch) surfaces as a
// Status too — an unspillable shard simply stays live.
#ifndef FKC_SERVING_SHARD_MANAGER_H_
#define FKC_SERVING_SHARD_MANAGER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/fair_center_sliding_window.h"
#include "core/objective_engine.h"
#include "serving/spill_store.h"

namespace fkc {
namespace serving {

class DeltaLog;
class ReplicatedLog;

/// An arrival addressed to one shard.
struct KeyedPoint {
  std::string key;
  Point point;
};

/// Configuration of the serving layer.
struct ShardManagerOptions {
  /// Template for every shard's sliding window (tenants without an override
  /// use it verbatim). The per-shard `num_threads` is forced to 1:
  /// parallelism lives at the manager level (one pool fanned across
  /// shards), never nested inside a shard.
  SlidingWindowOptions window;

  /// Fleet-default clustering objective applied when a shard is created
  /// (per-tenant deviations via SetTenantObjective). Checkpointed: a
  /// non-default value (or any per-tenant objective override) switches the
  /// fleet blob to the fkc-shards-v3 format; all-fair-center fleets keep
  /// emitting v2 bytes, byte-identical to pre-objective builds.
  ObjectiveKind objective = ObjectiveKind::kFairCenter;

  /// Worker threads of the shared pool multiplexing ingest and queries over
  /// the shards. 1 = fully sequential; 0 = hardware concurrency. An
  /// execution knob: results are bit-identical at any value and it is not
  /// part of the checkpoint. Independent of EXTERNAL concurrency: any
  /// number of client threads may call the manager at num_threads = 1.
  int num_threads = 1;

  /// Routing stripes of the shard map (see the file comment). 0 = auto
  /// (scaled to the hardware concurrency); anything else is rounded UP to
  /// the next power of two (for mask-based key hashing) and clamped to
  /// [1, 256]. An execution knob like num_threads: per-shard state,
  /// checkpoint bytes, and answers are identical at every stripe count —
  /// only contention changes. Not checkpointed.
  int num_stripes = 0;

  /// Upper bound on simultaneously live (in-memory) shards; 0 = unlimited.
  /// When a create or rehydration would exceed it, the least-recently
  /// touched live shard is spilled. Enforced between ingest batches, so a
  /// single batch touching more distinct keys than the cap still works. A
  /// resource knob, not state: it is not checkpointed. Best-effort under
  /// concurrency: shards pinned by in-flight readers are skipped and
  /// swept by the next enforcement instead.
  int64_t max_live_shards = 0;

  /// Backend holding evicted-shard state. nullptr = a private
  /// InMemorySpillStore (the historical behaviour). Pass a FileSpillStore
  /// to bound resident memory by the live-shard cap regardless of fleet
  /// size. A resource knob, not state: it is not checkpointed.
  std::shared_ptr<SpillStore> spill_store;
};

/// What one maintenance tick did. Delivered to the on_tick test hook and
/// returned by RunMaintenanceTick.
struct MaintenanceTickReport {
  int64_t tick = 0;          ///< 1-based tick counter (across Start cycles)
  int64_t evicted = 0;       ///< shards spilled by the eviction sweep
  int64_t gc_removed = 0;    ///< spill-store entries removed by GC
  size_t capture_bytes = 0;  ///< delta (or rebase) bytes appended to the log
  bool rebased = false;      ///< the DeltaLog re-based this tick
  Status status;             ///< first error of the tick (OK when clean)
};

/// Schedule of the background maintenance thread.
struct MaintenanceOptions {
  /// Time between ticks. The thread wakes early on StopMaintenance, so
  /// shutdown never waits out a cadence.
  std::chrono::milliseconds cadence{1000};

  /// TTL handed to the per-tick EvictIdle sweep; negative = no sweep.
  int64_t idle_ttl = -1;

  /// When set, every tick captures into this log (CheckpointDelta while the
  /// chain budget holds, re-base otherwise — see DeltaLog). The log must
  /// outlive the maintenance run. Ticks with zero dirty shards skip the
  /// capture entirely. The per-shard dirty bit is a SINGLE-CONSUMER
  /// cursor: while a log captures on a cadence, nothing else may call
  /// CheckpointDelta/CheckpointAll on the same manager — a direct call
  /// marks shards clean and the log's next delta silently omits them.
  DeltaLog* delta_log = nullptr;

  /// Like delta_log, but captures into a crash-safe ReplicatedLog
  /// (serving/replication/replicated_log.h): every appended base/delta is
  /// also published to the log's directory before the tick reports, so a
  /// SIGKILL between ticks loses at most the arrivals since the last
  /// capture. The same single-consumer dirty-bit rule applies, and at most
  /// ONE of delta_log / replicated_log may be set (StartMaintenance
  /// rejects both; a manual tick reports kInvalidArgument) — two captors
  /// would each see only half the deltas.
  ReplicatedLog* replicated_log = nullptr;

  /// Run spill-store GarbageCollect every this many ticks (0 = never).
  int64_t gc_every = 0;

  /// Test-visible tick hook, called after each tick outside every manager
  /// lock (so it may call back into the manager).
  std::function<void(const MaintenanceTickReport&)> on_tick;
};

/// Lifetime counts of backend failures the manager absorbed instead of
/// aborting (snapshot of internal atomics — see maintenance_stats()).
/// Durable-backend trouble is otherwise easy to miss: a failed spill
/// leaves the shard live, a failed rehydration answers with an error, and
/// both only surface as a Status the caller may drop. Operators alert on
/// these counters moving, then read the per-operation Status messages
/// (which name the path/key and the operation) for the diagnosis.
struct MaintenanceStats {
  /// Spill-store Put failures (eviction sweeps, LRU-cap enforcement, and
  /// restore-time cap spills). Each leaves the shard live and lossless.
  int64_t spill_write_failures = 0;
  /// Spill-store Get failures while rehydrating a spilled shard for a
  /// touch (ingest / per-key query / shard()).
  int64_t rehydration_failures = 0;
  /// Fleet checkpoints (CheckpointAll / CheckpointDelta, including
  /// DeltaLog/ReplicatedLog captures) abandoned because a spilled shard's
  /// blob could not be read back. Dirty bits stay set — nothing is lost.
  int64_t checkpoint_failures = 0;
};

/// Per-shard answer of a fan-out query. `solution.value` is the shard's
/// objective value — covering radius for fair-center tenants, sum-of-
/// distances cost for k-median tenants (see ObjectiveSolution).
struct ShardAnswer {
  std::string key;
  Result<ObjectiveSolution> solution = ObjectiveSolution{};
  QueryStats stats;
};

/// Owns and serves N independent sliding windows keyed by tenant/sensor id.
///
/// Typical use:
///   ShardManager manager(options, constraint, &metric, &solver);
///   manager.SetTenantOptions("tenant-7", small_window);  // optional
///   manager.IngestBatch(keyed_arrivals);       // routed + fanned out
///   auto answer = manager.Query("tenant-7");   // one shard
///   auto all = manager.QueryAll();             // every shard, multiplexed
///   manager.EvictIdle(100000);                 // spill idle tenants
///   auto delta = manager.CheckpointDelta();    // dirty shards only
///   auto blob = manager.CheckpointAll();       // the whole fleet
///   auto restored = ShardManager::Restore(blob.value(), &metric, &solver);
///
/// Thread-safety: every public method is safe to call from any number of
/// threads concurrently, including while the background maintenance thread
/// runs. Ingest and per-key queries contend only on their key's routing
/// stripe and the shards they route to (striped two-level locking — see
/// the file comment); QueryAll and the checkpoint family are epoch
/// snapshots that lock shards one at a time.
/// Compound caller sequences are not atomic, and pointers returned by
/// shard() are not protected by any lock once returned — do not retain
/// them across other manager calls, and do not use the non-const shard()
/// accessor while other threads (or the maintenance tick) may spill the
/// pointed-to window. Do not move a manager that other threads are using
/// or whose maintenance thread is running.
class ShardManager {
 public:
  /// `metric` and `solver` must outlive the manager; they are shared by all
  /// shards (code, not state). Arrivals whose color has a zero cap are
  /// rejected at ingest (a single window CHECK-aborts on them instead).
  ShardManager(ShardManagerOptions options, ColorConstraint constraint,
               const Metric* metric, const FairCenterSolver* solver);
  ~ShardManager();  ///< stops the maintenance thread, if running

  ShardManager(ShardManager&& other) noexcept;
  ShardManager& operator=(ShardManager&& other) noexcept;

  /// Feeds one arrival to the shard of `key`, creating (or rehydrating) the
  /// shard on first sight. Per-shard clocks are independent: each shard
  /// sees its own arrivals as one logical time step each. Fails with
  /// kInvalidArgument — consuming nothing — for an oversized key, an
  /// out-of-range or zero-cap color, empty or non-finite coordinates, or a
  /// dimension differing from the shard's earlier arrivals (the first
  /// accepted arrival pins it); other tenants are unaffected. Holds only
  /// `key`'s stripe lock for routing and `key`'s shard lock during the
  /// window update.
  Status Ingest(const std::string& key, Point p);

  /// Routes a batch of keyed arrivals: partitions the batch by routing
  /// stripe (lock-free), then groups by key WITHIN each stripe concurrently
  /// over the pool (preserving per-key arrival order), creates/rehydrates
  /// missing shards, and finally fans the per-shard groups out over the
  /// pool, each shard consuming its group through the core UpdateBatch
  /// engine. Produces the same per-shard state as calling Ingest per
  /// arrival in order. Invalid arrivals (oversized key, out-of-range or
  /// zero-cap color, empty/non-finite coordinates, dimension mismatch) are
  /// dropped individually — every valid arrival in the batch is still
  /// consumed — and reported through a kInvalidArgument status describing
  /// the earliest offender (by batch position) and the drop count. Two
  /// batches touching disjoint key sets contend at most on shared stripes
  /// during the routing step, and not at all when their stripes are
  /// disjoint. The fleet clock advances once per SUBMITTED batch arrival
  /// (a dropped arrival still consumes its tick), keeping LRU/TTL
  /// bookkeeping deterministic under concurrent grouping.
  Status IngestBatch(std::vector<KeyedPoint> batch);

  /// Registers per-tenant options applied when `key`'s shard is created;
  /// until then the fleet template applies to everyone else. Must be called
  /// before the tenant's first arrival (kFailedPrecondition once the shard
  /// exists — options are fixed at creation, like the core's). Overrides
  /// identical to the template are not stored. `options.num_threads` is
  /// ignored (forced to 1). Overrides travel in v2 fleet checkpoints, so a
  /// restored manager applies them to tenants first seen after the restore.
  Status SetTenantOptions(const std::string& key, SlidingWindowOptions options);

  /// The override registered for `key`, or nullptr if the tenant uses the
  /// fleet template. The pointer is invalidated by SetTenantOptions,
  /// ApplyDelta, and destruction — under concurrency, copy what you need
  /// while no such call can interleave.
  const SlidingWindowOptions* TenantOptions(const std::string& key) const;

  /// Registers the clustering objective `key`'s shard will optimize,
  /// overriding the fleet default. Same lifecycle contract as
  /// SetTenantOptions: must precede the tenant's first arrival
  /// (kFailedPrecondition once the shard exists — a window's objective is
  /// fixed at creation), and a registration equal to the fleet default is
  /// not stored. Objective overrides travel in v3 fleet checkpoints.
  Status SetTenantObjective(const std::string& key, ObjectiveKind objective);

  /// The objective `key`'s shard runs (or would run when created):
  /// the registered override, else the fleet default.
  ObjectiveKind TenantObjective(const std::string& key) const;

  /// Queries one shard, transparently rehydrating it if spilled. Fails with
  /// kNotFound for an unknown key. Holds only `key`'s shard lock during
  /// the query pipeline — concurrent ingest to other tenants proceeds.
  /// The solution's `value` is the shard's objective value (radius or
  /// k-median cost).
  Result<ObjectiveSolution> Query(const std::string& key,
                                  QueryStats* stats = nullptr);

  /// Queries every shard — live and spilled — multiplexed over the pool
  /// (each shard's query pipeline runs sequentially inside its task).
  /// An epoch snapshot: the shard set is collected (and pinned against
  /// eviction) under the stripe locks, then each shard is visited under
  /// its own lock — ingest to unrelated shards never waits on a
  /// fleet-wide query round. Spilled shards are answered from an ephemeral
  /// deserialization without changing their residency, so a fleet-wide
  /// dashboard query does not defeat eviction. Answers are ordered by key,
  /// deterministically; each answer reflects that shard's state at the
  /// moment its lock was taken. A spilled shard whose blob fails to load
  /// answers with that error.
  std::vector<ShardAnswer> QueryAll();

  /// Spills every live shard whose last touch is more than `idle_ttl`
  /// ticks ago, where the manager clock ticks once per ingested arrival
  /// fleet-wide. A touch is an ingest, a per-key Query, or shard() — a
  /// shard a dashboard keeps querying stays live even without arrivals
  /// (spilling it would only thrash rehydration); QueryAll's ephemeral
  /// reads deliberately do not touch. A spilled shard keeps answering
  /// (QueryAll) and is rehydrated in place by its next touch. Returns the
  /// number of shards spilled. idle_ttl = 0 spills everything not touched
  /// at the current clock; negative is a no-op. Shards whose lock is busy
  /// or that are pinned by an in-flight fleet read are SKIPPED, not waited
  /// for — the next sweep catches them. If the spill backend fails the
  /// sweep stops early (the shard stays live, nothing is lost) and the
  /// error is reported through `spill_status` when provided.
  int64_t EvictIdle(int64_t idle_ttl, Status* spill_status = nullptr);

  /// Serializes the fleet — template, constraint, tenant overrides (options
  /// and, in v3, objectives), and every shard (live or spilled) — into one
  /// self-describing blob, and marks every shard clean. The format is v2
  /// when the whole fleet is default fair-center (byte-identical to
  /// pre-objective builds) and v3 otherwise. An epoch snapshot like
  /// QueryAll: the shard
  /// set (and override table) is pinned under the stripe locks — all
  /// stripes held at once, acquired in ascending index order — then
  /// serialized one shard lock at a time in ascending key order, so the
  /// bytes are identical at every stripe count; shards created after the
  /// snapshot stay dirty for the next checkpoint, and arrivals landing on
  /// a shard after its segment was captured leave it dirty (the
  /// epoch-based clean mark records the captured state, not the latest).
  /// Spilled shards are written from their spill blob without rehydration;
  /// a spill blob that fails to load fails the whole checkpoint (leaving
  /// every dirty bit as it was — the next delta loses nothing).
  Result<std::string> CheckpointAll();

  /// Serializes only the shards dirtied since the last CheckpointAll /
  /// CheckpointDelta (plus the constraint and override table, which are
  /// cheap), and marks them clean. Applying the sequence of deltas, in
  /// order, onto a manager restored from the matching base reproduces the
  /// full fleet state. An idle fleet yields an empty delta (zero shards).
  /// Epoch-snapshot semantics identical to CheckpointAll.
  Result<std::string> CheckpointDelta();

  /// Folds a CheckpointDelta blob into this manager: replaces the override
  /// tables and upserts every contained shard as live-and-clean. Validates
  /// everything before mutating anything — on a non-OK return the manager
  /// is unchanged. The delta's constraint and fleet-default objective must
  /// match this manager's, and every shard blob's own magic must match the
  /// objective the delta's table assigns it (forged tags reject).
  /// Shards are swapped in one at a time under their own locks; a
  /// concurrent QueryAll may observe a partially applied delta (per-shard
  /// atomicity), never a torn shard.
  Status ApplyDelta(const std::string& bytes);

  /// Reconstructs a manager from CheckpointAll output — v3, v2, or the
  /// earliest v1 format (v1/v2 restore as all-fair-center, unchanged).
  /// The restored fleet answers every query identically and
  /// behaves identically under any future ingest sequence. Shards come
  /// back live until `max_live_shards` is reached; past the cap the
  /// verbatim blob segment is handed to the spill store directly (never
  /// deserialized-then-reserialized), so a fleet far larger than the cap
  /// restores without ever being fully resident. `num_threads`,
  /// `num_stripes`, `max_live_shards`, and `spill_store` are
  /// execution/resource knobs supplied at restore time, like the metric
  /// and solver. Corrupted, truncated, or implausible blobs fail with
  /// kInvalidArgument, never a process abort.
  static Result<ShardManager> Restore(
      const std::string& bytes, const Metric* metric,
      const FairCenterSolver* solver, int num_threads = 1,
      int64_t max_live_shards = 0,
      std::shared_ptr<SpillStore> spill_store = nullptr, int num_stripes = 0);

  // --- Background maintenance. ---

  /// Spawns the maintenance thread: every `options.cadence` it runs one
  /// RunMaintenanceTick(options). kFailedPrecondition while a thread is
  /// running, kInvalidArgument for a non-positive cadence. A thread whose
  /// loop already exited via a hook-initiated StopMaintenance (which
  /// cannot join itself) is reaped here, so Stop-from-hook followed by a
  /// later Start works. Start/Stop/maintenance_running are serialized
  /// against each other by a dedicated admin mutex (never held while
  /// joining a still-running loop — Stop must not block behind an
  /// in-flight tick it is about to join).
  Status StartMaintenance(MaintenanceOptions options);

  /// Joins the maintenance thread; prompt (wakes the thread mid-sleep) and
  /// idempotent — concurrent Stops are safe. Any tick already executing
  /// finishes first. Calling it from inside an on_tick hook (i.e. on the
  /// maintenance thread itself) cannot join: it signals the loop to exit
  /// after the current tick and returns immediately; a later Stop or
  /// Start — or the destructor — on any other thread reaps the finished
  /// thread.
  void StopMaintenance();

  /// True while the maintenance loop is running (a hook-initiated
  /// self-stop counts as stopped once the loop has exited, even before
  /// the finished thread is reaped).
  bool maintenance_running() const;
  /// Ticks executed so far, across StartMaintenance cycles and manual
  /// RunMaintenanceTick calls.
  int64_t maintenance_ticks() const { return maintenance_ticks_.load(); }

  /// Runs one maintenance tick synchronously on the calling thread:
  /// eviction sweep (options.idle_ttl >= 0), DeltaLog capture
  /// (options.delta_log, skipped while no shard is dirty), spill-store GC
  /// (every options.gc_every ticks). The deterministic alternative to the
  /// timer for tests and single-threaded drivers; the timer thread calls
  /// exactly this. Composed of the ordinary locked public operations — the
  /// tick as a whole is not atomic against concurrent callers, and it
  /// skips busy shards rather than stalling them.
  MaintenanceTickReport RunMaintenanceTick(const MaintenanceOptions& options);

  /// Removes spill-store entries no longer backing a spilled shard, plus
  /// temp-file debris from interrupted writes. Returns entries removed.
  /// Cheap for the in-memory store; a directory scan for the file store.
  /// Serialized against concurrent spills by the GC mutex, so a blob
  /// spilled after the keep-set snapshot can never be reaped.
  Result<int64_t> GarbageCollectSpill();

  /// Shard keys — live and spilled — in deterministic (lexicographic)
  /// order, merged across stripes.
  std::vector<std::string> Keys() const;

  /// Direct access to one shard, transparently rehydrating it if spilled
  /// (nullptr for an unknown key or a spill blob that fails to load). The
  /// manager retains ownership. The returned pointer is NOT protected by
  /// any lock: when `max_live_shards` is set, any later mutating access
  /// (Ingest, IngestBatch, Query, shard, EvictIdle, ApplyDelta) — or a
  /// concurrent maintenance tick — may spill the pointed-to window, and
  /// concurrent ingest to the same key mutates it. Use the pointer before
  /// the next manager call, from the only thread driving this key, and
  /// not while the maintenance thread runs.
  ObjectiveEngine* shard(const std::string& key);
  /// Const access never changes residency: returns nullptr for spilled as
  /// well as unknown keys.
  const ObjectiveEngine* shard(const std::string& key) const;

  /// All shards the manager knows, live + spilled.
  size_t shard_count() const;
  size_t live_shard_count() const;
  size_t spilled_shard_count() const;
  /// Shards a CheckpointDelta() would serialize right now.
  size_t dirty_shard_count() const;

  /// Fleet-wide arrival count — the clock EvictIdle's TTL is measured in.
  int64_t clock() const { return clock_.load(std::memory_order_relaxed); }
  /// Lifetime spill / rehydration totals (EvictIdle + LRU-cap spills;
  /// ephemeral QueryAll reads of spilled shards count as neither).
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  int64_t rehydrations() const {
    return rehydrations_.load(std::memory_order_relaxed);
  }

  /// Lifetime backend-failure counters (see MaintenanceStats). Monotone;
  /// a healthy backend keeps every field at zero.
  MaintenanceStats maintenance_stats() const {
    MaintenanceStats stats;
    stats.spill_write_failures =
        spill_write_failures_.load(std::memory_order_relaxed);
    stats.rehydration_failures =
        rehydration_failures_.load(std::memory_order_relaxed);
    stats.checkpoint_failures =
        checkpoint_failures_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Resolved routing-stripe count (a power of two, >= 1).
  int num_stripes() const { return static_cast<int>(stripes_.size()); }
  /// Routing operations (single-shard routes + batch groups) served per
  /// stripe since construction, index-aligned with the stripes. A load /
  /// skew gauge for benches: under Zipf-skewed keys the hot tenant's
  /// stripe dominates. Volatile under concurrency — never gate on it.
  std::vector<int64_t> StripeOps() const;
  /// Current pin totals per stripe (sum of Shard::pins). Quiescent
  /// managers must report all zeros — fleet snapshots unpin on every exit
  /// path; exposed so tests can assert exactly that.
  std::vector<int64_t> StripePins() const;
  /// Iterations the shared pool's workers claimed while another fan-out
  /// was concurrently in flight (ThreadPool::shared_claims; 0 without a
  /// pool). Volatile — a work-sharing gauge, not a counter to gate on.
  int64_t pool_shared_claims() const {
    return pool_ ? pool_->shared_claims() : 0;
  }

  /// Stored-point totals of the live (resident) shards — the paper's memory
  /// unit, here doubling as the resident-memory gauge eviction exists to
  /// bound. Spilled shards hold their points in serialized form only.
  MemoryStats TotalMemory() const;

  const ShardManagerOptions& options() const { return options_; }
  const ColorConstraint& constraint() const { return constraint_; }
  SpillStore* spill_store() const { return options_.spill_store.get(); }

  /// The stripe-count convention: 0 means "auto" (4x the hardware
  /// concurrency), anything else is taken as requested; the result is then
  /// rounded up to a power of two and clamped to [1, 256].
  static int ResolveStripeCount(int requested);

 private:
  /// One tenant's slot: a live window, or (live == nullptr) its serialized
  /// state parked in the spill store under the tenant key. Entries are
  /// never removed from their stripe's shard map (eviction only drops the
  /// live window), so Shard* pointers are stable for the manager's
  /// lifetime.
  ///
  /// Field guards:
  ///   * `mu` (the per-shard lock) guards the contents of `live` (every
  ///     Update/Query/SerializeState call), `spill_dirty`, and
  ///     `clean_epoch`.
  ///   * The owning stripe's lock (exclusive) guards `pins`, `last_touch`,
  ///     `dim`, and `kind`.
  ///   * The `live` POINTER itself (residency) changes only with BOTH the
  ///     stripe lock and `mu` held, so either lock suffices to read it.
  struct Shard {
    /// Per-shard lock. Blocking-acquired only while no stripe lock is
    /// held; try_lock'ed under the stripe lock by eviction. Mutable so
    /// const fleet accessors can lock shards they only read.
    mutable std::mutex mu;
    std::unique_ptr<ObjectiveEngine> live;  ///< null when spilled
    /// The objective this shard's engine runs. Fixed when the entry is
    /// created (factory table lookup) or restored (the blob's own magic);
    /// ApplyDelta may replace it together with the whole engine. Read by
    /// rehydration and ephemeral QueryAll reads to cross-check a spill
    /// blob's magic — a store returning a different objective's blob is a
    /// corruption, answered with a Status.
    ObjectiveKind kind = ObjectiveKind::kFairCenter;
    bool spill_dirty = false;  ///< spilled state not yet in a fleet blob
    /// Live shards: state_epoch() at the last fleet checkpoint;
    /// kNeverCheckpointed marks dirty-since-birth (or since a dirty spill
    /// was rehydrated, which resets the window's epoch counter).
    int64_t clean_epoch = kNeverCheckpointed;
    /// In-flight operations holding a reference (stripe lock). A pinned
    /// shard is never spilled: the spill path re-checks after its store
    /// write and aborts. Pins do not block rehydration.
    int pins = 0;
    int64_t last_touch = 0;  ///< manager clock at the last touch
    /// Coordinate dimension pinned by the first accepted arrival (or the
    /// restored state); -1 until then. Kept outside the window so a
    /// mismatched arrival is rejected without rehydrating a spilled shard.
    int64_t dim = -1;
  };

  /// One hash partition of the routing layer (see the file comment). All
  /// fields are guarded by `mu` — shared mode suffices for pure reads,
  /// every mutation holds it exclusive. Held in unique_ptrs so Stripe
  /// addresses are stable and the manager stays movable.
  struct Stripe {
    mutable std::shared_mutex mu;
    /// Shards keyed by tenant id; std::map for deterministic iteration AND
    /// stable Shard addresses (entries are never erased).
    std::map<std::string, Shard> shards;
    /// This stripe's slice of the per-tenant option overrides.
    std::map<std::string, SlidingWindowOptions> overrides;
    /// This stripe's slice of the per-tenant objective overrides (tenants
    /// deviating from options_.objective).
    std::map<std::string, ObjectiveKind> objective_overrides;
    /// (last_touch, key) of this stripe's live shards: the stripe-local
    /// LRU victim is begin(); the fleet-wide victim is the minimum of the
    /// stripes' fronts, preserving the global deterministic order.
    std::set<std::pair<int64_t, std::string>> live_lru;
    int64_t ops = 0;  ///< routing operations served (load/skew gauge)
  };

  /// One pinned entry of an epoch snapshot (QueryAll / checkpoints).
  struct PinnedShard {
    const std::string* key = nullptr;  ///< stable: map keys are never erased
    Shard* shard = nullptr;
    Stripe* stripe = nullptr;  ///< owner, for the unpin pass
  };

  /// Unpins a snapshot on scope exit, whatever the exit path.
  class FleetPin;

  /// What TrySpillShard did.
  enum class SpillAttempt { kSpilled, kSkipped };

  /// Timer-thread state; heap-allocated so the manager stays movable while
  /// no thread is running.
  struct MaintenanceState;

  static constexpr int64_t kNeverCheckpointed = -1;

  /// `key`'s routing stripe (stable hash partition; stripe count is fixed
  /// at construction).
  Stripe& StripeOf(const std::string& key) const;

  /// Requires the shard's `mu` (reads the live window's epoch counter).
  bool IsDirty(const Shard& shard) const;
  /// The offending-arrival checks shared by Ingest and IngestBatch:
  /// everything the core engine would CHECK-abort on, or that the
  /// checkpoint reader would later refuse to restore. `pinned_dim` is the
  /// dimension the arrival must have (-1 = not pinned yet).
  Status ValidateArrival(const std::string& key, const Point& p,
                         int64_t pinned_dim) const;
  /// `key`'s pinned coordinate dimension, or -1 for unknown keys.
  /// Requires `stripe`'s lock.
  int64_t PinnedDimensionLocked(const Stripe& stripe,
                                const std::string& key) const;
  /// Template or override for `key`, num_threads forced to 1. Requires
  /// `stripe`'s lock (reads the stripe's override slice).
  SlidingWindowOptions OptionsForKey(const Stripe& stripe,
                                     const std::string& key) const;
  /// Fleet default or registered objective override for `key`. Requires
  /// `stripe`'s lock (shared suffices).
  ObjectiveKind ObjectiveForKey(const Stripe& stripe,
                                const std::string& key) const;
  /// Routing step of every single-shard operation. Requires `stripe`'s
  /// lock: finds `key`'s entry (creating a live one when `create_missing`),
  /// and refreshes its last_touch to `touch`. Returns nullptr for an
  /// unknown key when not creating. The caller pins before releasing the
  /// stripe lock if it needs the shard past the lookup.
  Shard* RouteLocked(Stripe& stripe, const std::string& key,
                     bool create_missing, int64_t touch);
  /// Rehydrates `key`'s shard if spilled. Caller holds the shard's `mu`
  /// and NO stripe lock; the residency commit takes the stripe lock
  /// internally. On success the shard is live.
  Status EnsureLiveHeld(const std::string& key, Shard* shard);
  /// Sets a live shard's last_touch, keeping the stripe's LRU index in
  /// sync. Requires `stripe`'s lock.
  void TouchLive(Stripe& stripe, const std::string& key, Shard* shard,
                 int64_t touch);
  /// Attempts to spill `key`'s live shard right now, without blocking:
  /// kSkipped when the shard is unknown, already spilled, pinned, its lock
  /// is busy, or (idle_ttl >= 0) it is no longer idle by the time the
  /// stripe lock is held; a backend failure is returned as a Status and
  /// leaves the shard live. Caller must hold NO manager lock.
  Result<SpillAttempt> TrySpillShard(const std::string& key, int64_t idle_ttl);
  /// Spills least-recently-touched live shards (fleet-wide minimum of the
  /// stripes' LRU fronts; ties broken by smaller key, deterministically —
  /// the same global order the unstriped index had) until the cap holds.
  /// `exclude` (may be null) is never spilled; pinned or lock-busy shards
  /// are skipped (best-effort, like a failing spill backend). Caller must
  /// hold NO manager lock.
  void EnforceLiveCap(const std::string* exclude);
  /// Pins every current shard entry — all stripe locks held at once, taken
  /// in ascending index order — and returns the snapshot in deterministic
  /// (ascending key) order. When `overrides_out` / `objectives_out` are
  /// non-null, the merged override tables are copied out under the same
  /// hold, so they travel with the exact shard set they were snapshotted
  /// beside.
  std::vector<PinnedShard> PinFleet(
      std::map<std::string, SlidingWindowOptions>* overrides_out = nullptr,
      std::map<std::string, ObjectiveKind>* objectives_out = nullptr);
  void UnpinFleet(const std::vector<PinnedShard>& pinned);
  /// Shared body of CheckpointAll / CheckpointDelta (`dirty_only`).
  Result<std::string> CheckpointSnapshot(bool dirty_only);
  /// Runs fn(0..count) over the pool, or inline without one (or for a
  /// single task).
  void FanOut(int64_t count, const std::function<void(int64_t)>& fn);
  ThreadPool* Pool() { return pool_.get(); }
  /// `state` is passed explicitly: StopMaintenance detaches the state from
  /// the manager (under the admin mutex) before joining, so the loop must
  /// not read the member it was started from.
  void MaintenanceLoop(MaintenanceState* state);

  ShardManagerOptions options_;
  ColorConstraint constraint_;
  const Metric* metric_;
  const FairCenterSolver* solver_;

  /// The routing stripes (see file comment); stripe count is a power of
  /// two fixed at construction, so StripeOf is a hash + mask.
  std::vector<std::unique_ptr<Stripe>> stripes_;

  /// Serializes spill-store writes against GarbageCollectSpill's keep-set
  /// snapshot + sweep (lock order: shard mu -> gc_mu_ -> stripe mu).
  std::unique_ptr<std::mutex> gc_mu_;

  /// Live (resident) shards across all stripes; mutated only under the
  /// owning stripe's lock but read lock-free by the cap check.
  std::atomic<size_t> live_count_{0};

  /// Shared pool (nullptr when the effective size is 1), created eagerly
  /// so concurrent fan-outs never race a lazy construction.
  std::unique_ptr<ThreadPool> pool_;

  /// Guards maintenance_ lifecycle (Start/Stop/running); never held while
  /// joining a still-running loop, so a hook's re-entrant Stop cannot
  /// deadlock the join.
  std::unique_ptr<std::mutex> maintenance_admin_mu_;
  std::unique_ptr<MaintenanceState> maintenance_;
  std::atomic<int64_t> maintenance_ticks_{0};

  std::atomic<int64_t> clock_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> rehydrations_{0};

  /// Backend-failure counters behind maintenance_stats().
  std::atomic<int64_t> spill_write_failures_{0};
  std::atomic<int64_t> rehydration_failures_{0};
  std::atomic<int64_t> checkpoint_failures_{0};
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_SHARD_MANAGER_H_
