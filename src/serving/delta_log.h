// A replayable, self-compacting log of fleet checkpoints: one full base
// blob (CheckpointAll) plus an ordered chain of incremental deltas
// (CheckpointDelta). Replay restores the base and applies the chain —
// bit-exactly the fleet that was captured, byte-equal per shard to a
// restore from a fresh full checkpoint.
//
// Without compaction a delta chain grows forever and replay cost grows with
// it, so the log re-bases itself: once the chain exceeds a configurable
// length or byte budget, the next Capture takes a full checkpoint as the
// new base and drops the chain. The budget trades capture cost (full blobs
// are expensive) against replay cost and log size.
//
// Capture is exactly what the ShardManager's background maintenance thread
// feeds each tick (MaintenanceOptions::delta_log); a replication transport
// would ship base_ and each appended delta to followers. Thread-safe: one
// internal mutex serializes Capture/Replay/accessors (the manager calls it
// from the maintenance thread while tests read from the main thread).
//
// Under the manager's two-level locking, a Capture runs concurrently with
// ingest: CheckpointDelta/CheckpointAll are epoch snapshots that pin the
// shard set under the fleet lock and then serialize one shard lock at a
// time, so a capture never stalls ingest to unrelated tenants. Each
// captured shard segment is that shard's state at the moment its lock was
// taken; arrivals landing after a shard's segment was written leave the
// shard dirty for the NEXT capture (the epoch-based clean mark records
// what was captured, not what is latest), so a replayed log is always some
// prefix-consistent fleet, never a torn one.
#ifndef FKC_SERVING_DELTA_LOG_H_
#define FKC_SERVING_DELTA_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/shard_manager.h"

namespace fkc {
namespace serving {

class DeltaLog {
 public:
  struct Options {
    /// Deltas tolerated in the chain before the next Capture re-bases;
    /// <= 0 re-bases on every capture (a chain of full blobs).
    int64_t max_chain_length = 16;
    /// Summed delta bytes tolerated before re-basing.
    int64_t max_chain_bytes = int64_t{1} << 26;  // 64 MiB
  };

  /// What one Capture call recorded.
  struct CaptureStats {
    bool rebased = false;   ///< this capture replaced the base
    size_t bytes = 0;       ///< bytes appended (delta or new base)
    size_t chain_length = 0;  ///< deltas in the chain afterwards
  };

  DeltaLog();  ///< default Options
  explicit DeltaLog(Options options);

  /// Captures `manager`'s current state into the log: the first call (and
  /// any call finding the chain over budget) takes a full checkpoint as
  /// the new base; every other call appends a CheckpointDelta. Marks the
  /// manager's shards clean either way, so consecutive captures ship only
  /// what changed in between. On a non-OK return the log is unchanged
  /// (and, for a failed full checkpoint, so are the manager's dirty bits).
  /// The dirty bit is a single-consumer cursor: a manager feeding this log
  /// must not also serve direct CheckpointDelta/CheckpointAll callers, or
  /// the log's deltas will silently omit whatever those calls marked clean
  /// (Replay then reproduces a stale fleet until the next re-base).
  Result<CaptureStats> Capture(ShardManager* manager);

  /// Replays the log: Restore(base), then ApplyDelta for each chained
  /// delta in order. kFailedPrecondition before the first Capture. The
  /// execution/resource knobs mirror ShardManager::Restore.
  Result<ShardManager> Replay(
      const Metric* metric, const FairCenterSolver* solver,
      int num_threads = 1, int64_t max_live_shards = 0,
      std::shared_ptr<SpillStore> spill_store = nullptr) const;

  bool has_base() const;
  size_t base_bytes() const;
  size_t chain_length() const;
  int64_t chain_bytes() const;
  /// Re-bases performed by Capture (the initial base does not count).
  int64_t rebases() const;

 private:
  mutable std::mutex mu_;
  Options options_;
  bool has_base_ = false;
  std::string base_;
  std::vector<std::string> chain_;
  int64_t chain_bytes_ = 0;
  int64_t rebases_ = 0;
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_DELTA_LOG_H_
