#include "serving/replication/transport.h"

#include <utility>

#include "serving/replication/wire_format.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace fkc {
namespace serving {

#ifndef _WIN32

namespace {

using Clock = std::chrono::steady_clock;

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("cannot set O_NONBLOCK on socket");
  }
  return Status::OK();
}

// Remaining milliseconds before `deadline` (clamped to >= 0).
int RemainingMs(Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return remaining.count() > 0 ? static_cast<int>(remaining.count()) : 0;
}

// Reads exactly `size` bytes from a non-blocking fd, polling for
// readability, within `timeout`. The bounded wait is what turns a silent
// partition into a detected one (the receiver's heartbeat liveness check).
Status ReadFull(int fd, char* buf, size_t size,
                std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(fd, buf + done, size - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) return Status::IoError("replication peer closed");
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::IoError("replication socket read failed");
    }
    const int wait = RemainingMs(deadline);
    if (wait == 0) return Status::IoError("replication read timed out");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    ::poll(&pfd, 1, wait);  // the loop re-checks recv + the deadline
  }
  return Status::OK();
}

// Writes exactly `size` bytes within `timeout` (MSG_NOSIGNAL: a vanished
// peer must surface as a Status, not a SIGPIPE).
Status WriteFull(int fd, const char* buf, size_t size,
                 std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  size_t done = 0;
  while (done < size) {
    const ssize_t sent = ::send(fd, buf + done, size - done, MSG_NOSIGNAL);
    if (sent > 0) {
      done += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::IoError("replication socket write failed");
    }
    const int wait = RemainingMs(deadline);
    if (wait == 0) return Status::IoError("replication send timed out");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    ::poll(&pfd, 1, wait);
  }
  return Status::OK();
}

// Reads one whole frame (header + checksum-verified payload).
Status ReadFrame(int fd, std::chrono::milliseconds timeout, Frame* frame) {
  char header[kFrameHeaderBytes];
  FKC_RETURN_IF_ERROR(ReadFull(fd, header, sizeof(header), timeout));
  uint64_t payload_size = 0;
  uint64_t payload_checksum = 0;
  FKC_RETURN_IF_ERROR(DecodeFrameHeader(header, sizeof(header), frame,
                                        &payload_size, &payload_checksum));
  frame->payload.resize(static_cast<size_t>(payload_size));
  if (payload_size > 0) {
    FKC_RETURN_IF_ERROR(
        ReadFull(fd, frame->payload.data(), frame->payload.size(), timeout));
  }
  return CheckFramePayload(payload_size, payload_checksum, frame->payload);
}

}  // namespace

// --- LogSender. ---

struct LogSender::Connection {
  int fd = -1;
  std::thread thread;
};

LogSender::LogSender(const ReplicatedLog* log, Options options)
    : log_(log), options_(std::move(options)) {}

LogSender::~LogSender() { Stop(); }

Status LogSender::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("log sender already started");
  }
  int fd = -1;
  if (!options_.unix_socket_path.empty()) {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError("cannot create unix socket");
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return Status::IoError("cannot bind unix socket '" +
                             options_.unix_socket_path + "'");
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError("cannot create TCP socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return Status::IoError("cannot bind 127.0.0.1 TCP port");
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Status::IoError("cannot listen on replication socket");
  }
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  listen_fd_ = fd;
  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LogSender::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    // Break every in-flight poll/recv promptly; the fds are closed after
    // the joins.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so connections_ is stable now.
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
    if (connection->fd >= 0) ::close(connection->fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

int LogSender::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

SenderStats LogSender::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LogSender::AcceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 100) <= 0) continue;  // timeout/EINTR: re-check stop
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++stats_.connections_accepted;
    connections_.push_back(std::make_unique<Connection>());
    Connection* connection = connections_.back().get();
    connection->fd = fd;
    connection->thread =
        std::thread([this, connection] { ServeConnection(connection); });
  }
}

Status LogSender::SendFrame(int fd, const Frame& frame) {
  std::string bytes = EncodeFrame(frame);
  FaultInjector::FrameFate fate = FaultInjector::FrameFate::kDeliver;
  if (options_.fault_injector != nullptr) {
    fate = options_.fault_injector->NextFrameFate();
  }
  switch (fate) {
    case FaultInjector::FrameFate::kDrop:
      return Status::OK();  // "sent" into the void; the gap forces a resync
    case FaultInjector::FrameFate::kCorrupt:
      options_.fault_injector->CorruptFrame(&bytes);
      break;
    case FaultInjector::FrameFate::kTruncate: {
      const size_t cut = options_.fault_injector->TruncationPoint(bytes.size());
      Status partial =
          WriteFull(fd, bytes.data(), cut, options_.send_timeout);
      if (!partial.ok()) return partial;
      // A torn frame desyncs everything after it; fail the connection like
      // a real mid-frame connection loss would.
      return Status::IoError("injected frame truncation");
    }
    case FaultInjector::FrameFate::kDelay:
      std::this_thread::sleep_for(options_.fault_injector->delay());
      break;
    case FaultInjector::FrameFate::kDeliver:
      break;
  }
  return WriteFull(fd, bytes.data(), bytes.size(), options_.send_timeout);
}

void LogSender::ServeConnection(Connection* connection) {
  const int fd = connection->fd;
  // The follower opens with HELLO naming the next entry it wants.
  Frame hello;
  if (!ReadFrame(fd, options_.send_timeout, &hello).ok() ||
      hello.type != FrameType::kHello) {
    return;
  }
  // A follower that had ANY position (generation != 0) and needs the base
  // again is a resync; a brand-new follower is an initial sync.
  int64_t followed_generation = hello.generation;
  int64_t next_index = hello.index;
  Clock::time_point last_sent = Clock::now();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    std::vector<ReplicatedLog::Entry> entries =
        log_->EntriesFrom(followed_generation, next_index);
    if (!entries.empty()) {
      for (const ReplicatedLog::Entry& entry : entries) {
        Frame frame;
        frame.type =
            entry.index == 0 ? FrameType::kBase : FrameType::kDelta;
        frame.generation = entry.generation;
        frame.index = entry.index;
        frame.chain_length = static_cast<int64_t>(log_->chain_length());
        frame.payload = entry.payload;
        const bool resync = entry.index == 0 && followed_generation != 0;
        Status sent = SendFrame(fd, frame);
        std::lock_guard<std::mutex> lock(mu_);
        if (!sent.ok()) {
          ++stats_.send_errors;
          return;
        }
        ++stats_.frames_sent;
        if (resync) ++stats_.resyncs_served;
        followed_generation = entry.generation;
        next_index = entry.index + 1;
        last_sent = Clock::now();
      }
      continue;  // more entries may have landed meanwhile
    }
    if (Clock::now() - last_sent >= options_.heartbeat_interval) {
      Frame heartbeat;
      heartbeat.type = FrameType::kHeartbeat;
      heartbeat.generation = log_->generation();
      heartbeat.chain_length = static_cast<int64_t>(log_->chain_length());
      Status sent = SendFrame(fd, heartbeat);
      std::lock_guard<std::mutex> lock(mu_);
      if (!sent.ok()) {
        ++stats_.send_errors;
        return;
      }
      ++stats_.frames_sent;
      ++stats_.heartbeats_sent;
      last_sent = Clock::now();
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

// --- LogReceiver. ---

LogReceiver::LogReceiver(const Metric* metric, const FairCenterSolver* solver,
                         Options options)
    : metric_(metric),
      solver_(solver),
      options_(std::move(options)),
      backoff_rng_(options_.backoff_seed) {}

LogReceiver::~LogReceiver() { Stop(); }

Status LogReceiver::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("log receiver already started");
  }
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void LogReceiver::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    if (active_fd_ >= 0) ::shutdown(active_fd_, SHUT_RDWR);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::chrono::milliseconds LogReceiver::NextBackoff(int attempt) {
  // Capped exponential with seeded jitter: uniform [0.5, 1) of the capped
  // envelope, so a herd of followers re-dialing a restarted leader spreads
  // out deterministically per seed.
  const int shift = attempt < 16 ? attempt : 16;
  int64_t envelope_ms = options_.initial_backoff.count() << shift;
  if (envelope_ms > options_.max_backoff.count() || envelope_ms <= 0) {
    envelope_ms = options_.max_backoff.count();
  }
  double jitter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jitter = 0.5 + 0.5 * backoff_rng_.NextDouble();
  }
  const int64_t ms = static_cast<int64_t>(envelope_ms * jitter);
  return std::chrono::milliseconds(ms > 0 ? ms : 1);
}

void LogReceiver::SleepInterruptible(std::chrono::milliseconds duration) {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait_for(lock, duration, [this] { return stopping_; });
}

int LogReceiver::Connect() {
  int fd = -1;
  if (!options_.unix_socket_path.empty()) {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
  }
  if (!SetNonBlocking(fd).ok()) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void LogReceiver::RunLoop() {
  int failed_attempts = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    const int fd = Connect();
    if (fd < 0) {
      SleepInterruptible(NextBackoff(failed_attempts++));
      continue;
    }
    failed_attempts = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      active_fd_ = fd;
      ++stats_.connects;
      staleness_.connected = true;
    }
    DrainConnection(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      staleness_.connected = false;
      active_fd_ = -1;
    }
    ::close(fd);
    // Jittered pause before re-dialing a connection that dropped (a
    // fault-heavy sender would otherwise be re-dialed hot).
    SleepInterruptible(NextBackoff(0));
  }
}

void LogReceiver::DrainConnection(int fd) {
  Frame hello;
  hello.type = FrameType::kHello;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hello.generation = staleness_.applied_generation;
    // Entry indexes: 0 = base, deltas from 1. With a fleet applied, the
    // next entry wanted is delta (applied deltas + 1) = applied_entries;
    // without one, everything from the base.
    hello.index = staleness_.has_fleet ? staleness_.applied_entries : 0;
  }
  const std::string hello_bytes = EncodeFrame(hello);
  if (!WriteFull(fd, hello_bytes.data(), hello_bytes.size(),
                 options_.receive_timeout)
           .ok()) {
    return;
  }
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    Frame frame;
    Status read = ReadFrame(fd, options_.receive_timeout, &frame);
    if (!read.ok()) {
      // Timeout (heartbeat silence: presumed partition), peer close, or
      // framing/checksum damage — all resolved the same way: reconnect
      // and let HELLO negotiate a tail or a resync.
      if (read.code() == StatusCode::kInvalidArgument) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.decode_errors;
      }
      return;
    }
    // Every leader frame announces the leader's position — the staleness
    // bound updates even when the frame itself is just a heartbeat.
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.frames_received;
    staleness_.leader_generation = frame.generation;
    staleness_.leader_entries =
        frame.generation == 0 ? 0 : 1 + frame.chain_length;
    switch (frame.type) {
      case FrameType::kBase: {
        lock.unlock();  // Restore is heavy; rebuild outside the lock
        auto restored = ShardManager::Restore(
            frame.payload, metric_, solver_, options_.num_threads,
            options_.max_live_shards, options_.spill_store);
        lock.lock();
        if (!restored.ok()) {
          ++stats_.decode_errors;
          return;
        }
        if (options_.local_log != nullptr) {
          // Durability is best-effort on the replica: a failed local
          // append degrades follower crash-safety, not serving.
          options_.local_log->AppendBase(frame.generation, frame.payload);
        }
        fleet_ =
            std::make_unique<ShardManager>(std::move(restored).value());
        staleness_.has_fleet = true;
        staleness_.applied_generation = frame.generation;
        staleness_.applied_entries = 1;
        ++stats_.bases_applied;
        break;
      }
      case FrameType::kDelta: {
        const bool in_order =
            staleness_.has_fleet &&
            frame.generation == staleness_.applied_generation &&
            frame.index == staleness_.applied_entries;
        if (!in_order) {
          // A gap (dropped frame) or a generation we never based on:
          // applying would tear the replica. Reconnect and resync.
          ++stats_.decode_errors;
          return;
        }
        Status applied = fleet_->ApplyDelta(frame.payload);
        if (!applied.ok()) {
          ++stats_.decode_errors;
          return;
        }
        if (options_.local_log != nullptr) {
          options_.local_log->AppendDelta(frame.generation, frame.index,
                                          frame.payload);
        }
        ++staleness_.applied_entries;
        ++stats_.deltas_applied;
        break;
      }
      case FrameType::kHeartbeat:
        ++stats_.heartbeats_received;
        break;
      case FrameType::kHello:
        ++stats_.decode_errors;  // the leader never sends HELLO
        return;
    }
    const bool same_generation =
        staleness_.leader_generation == staleness_.applied_generation;
    staleness_.entries_behind =
        same_generation
            ? staleness_.leader_entries - staleness_.applied_entries
            : staleness_.leader_entries;
    if (staleness_.entries_behind < 0) staleness_.entries_behind = 0;
    if (frame.type == FrameType::kHeartbeat &&
        staleness_.entries_behind > 0) {
      // The sender only heartbeats a connection it believes caught up, and
      // TCP delivers in order — so a heartbeat announcing a position ahead
      // of what we applied proves the tail was dropped on the wire (its
      // sender-side cursor advanced past a frame we never got). Without
      // this, a replica behind an exhausted-fault link would stay
      // "connected" but stale until the next log append flushed the gap
      // out. Reconnect and let HELLO fetch the missing entries.
      ++stats_.gap_resyncs;
      return;
    }
  }
}

std::vector<ShardAnswer> LogReceiver::QueryAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fleet_ == nullptr) return {};
  return fleet_->QueryAll();
}

Result<std::string> LogReceiver::CheckpointAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fleet_ == nullptr) {
    return Status::FailedPrecondition("no base applied on this replica yet");
  }
  return fleet_->CheckpointAll();
}

std::vector<std::string> LogReceiver::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fleet_ == nullptr) return {};
  return fleet_->Keys();
}

LogReceiver::StalenessBound LogReceiver::staleness() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staleness_;
}

ReceiverStats LogReceiver::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

#else  // _WIN32: the transport is POSIX-only; everything degrades to
       // kUnimplemented so the rest of the serving layer still builds.

struct LogSender::Connection {};

LogSender::LogSender(const ReplicatedLog* log, Options options)
    : log_(log), options_(std::move(options)) {}
LogSender::~LogSender() {}
Status LogSender::Start() {
  return Status::Unimplemented("replication transport requires POSIX sockets");
}
void LogSender::Stop() {}
int LogSender::port() const { return 0; }
SenderStats LogSender::stats() const { return SenderStats{}; }
void LogSender::AcceptLoop() {}
void LogSender::ServeConnection(Connection*) {}
Status LogSender::SendFrame(int, const Frame&) {
  return Status::Unimplemented("replication transport requires POSIX sockets");
}

LogReceiver::LogReceiver(const Metric* metric, const FairCenterSolver* solver,
                         Options options)
    : metric_(metric),
      solver_(solver),
      options_(std::move(options)),
      backoff_rng_(options_.backoff_seed) {}
LogReceiver::~LogReceiver() {}
Status LogReceiver::Start() {
  return Status::Unimplemented("replication transport requires POSIX sockets");
}
void LogReceiver::Stop() {}
std::vector<ShardAnswer> LogReceiver::QueryAll() { return {}; }
Result<std::string> LogReceiver::CheckpointAll() {
  return Status::Unimplemented("replication transport requires POSIX sockets");
}
std::vector<std::string> LogReceiver::Keys() const { return {}; }
LogReceiver::StalenessBound LogReceiver::staleness() const {
  return StalenessBound{};
}
ReceiverStats LogReceiver::stats() const { return ReceiverStats{}; }
void LogReceiver::RunLoop() {}
int LogReceiver::Connect() { return -1; }
void LogReceiver::DrainConnection(int) {}
std::chrono::milliseconds LogReceiver::NextBackoff(int) {
  return std::chrono::milliseconds(0);
}
void LogReceiver::SleepInterruptible(std::chrono::milliseconds) {}

#endif  // _WIN32

}  // namespace serving
}  // namespace fkc
