#include "serving/replication/fault_injector.h"

#include <utility>

namespace fkc {
namespace serving {

FaultInjector::FaultInjector(Options options)
    : options_(options), rng_(options.seed) {}

bool FaultInjector::SpendBudgetLocked() {
  if (options_.max_faults >= 0 && faults_spent_ >= options_.max_faults) {
    return false;
  }
  ++faults_spent_;
  return true;
}

FaultInjector::FrameFate FaultInjector::NextFrameFate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.frames_seen;
  // One uniform draw per frame keeps the schedule a pure function of the
  // frame sequence number, independent of which fault classes are enabled.
  const double u = rng_.NextDouble();
  double edge = options_.drop_prob;
  if (u < edge && SpendBudgetLocked()) {
    ++counters_.frames_dropped;
    return FrameFate::kDrop;
  }
  edge += options_.corrupt_prob;
  if (u < edge && SpendBudgetLocked()) {
    ++counters_.frames_corrupted;
    return FrameFate::kCorrupt;
  }
  edge += options_.truncate_prob;
  if (u < edge && SpendBudgetLocked()) {
    ++counters_.frames_truncated;
    return FrameFate::kTruncate;
  }
  edge += options_.delay_prob;
  if (u < edge && SpendBudgetLocked()) {
    ++counters_.frames_delayed;
    return FrameFate::kDelay;
  }
  return FrameFate::kDeliver;
}

void FaultInjector::CorruptFrame(std::string* bytes) {
  if (bytes->empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t offset =
      static_cast<size_t>(rng_.NextBounded(bytes->size()));
  (*bytes)[offset] = static_cast<char>((*bytes)[offset] ^ 0x5a);
}

size_t FaultInjector::TruncationPoint(size_t frame_size) {
  if (frame_size == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(rng_.NextBounded(frame_size));
}

bool FaultInjector::NextWriteFails() {
  std::lock_guard<std::mutex> lock(mu_);
  if (rng_.NextDouble() < options_.write_failure_prob &&
      SpendBudgetLocked()) {
    ++counters_.failed_writes;
    return true;
  }
  return false;
}

bool FaultInjector::NextReadFails() {
  std::lock_guard<std::mutex> lock(mu_);
  if (rng_.NextDouble() < options_.read_failure_prob && SpendBudgetLocked()) {
    ++counters_.failed_reads;
    return true;
  }
  return false;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

FaultInjectingSpillStore::FaultInjectingSpillStore(
    std::shared_ptr<SpillStore> inner, FaultInjector* injector)
    : inner_(std::move(inner)),
      injector_(injector),
      name_(std::string("fault-injecting(") + inner_->Name() + ")") {}

Status FaultInjectingSpillStore::Put(const std::string& key,
                                     std::string blob) {
  if (injector_->NextWriteFails()) {
    return Status::IoError("injected write failure storing key '" + key +
                           "' (seeded fault schedule)");
  }
  return inner_->Put(key, std::move(blob));
}

Result<std::string> FaultInjectingSpillStore::Get(
    const std::string& key) const {
  if (injector_->NextReadFails()) {
    return Status::IoError("injected read failure loading key '" + key +
                           "' (seeded fault schedule)");
  }
  return inner_->Get(key);
}

Status FaultInjectingSpillStore::Erase(const std::string& key) {
  return inner_->Erase(key);
}

Result<int64_t> FaultInjectingSpillStore::GarbageCollect(
    const std::set<std::string>& keep) {
  return inner_->GarbageCollect(keep);
}

Result<int64_t> FaultInjectingSpillStore::Count() const {
  return inner_->Count();
}

}  // namespace serving
}  // namespace fkc
