// Leader -> follower streaming of a ReplicatedLog over a length-prefixed
// unix-socket or localhost-TCP connection (wire_format.h frames).
//
//   LogSender    runs on the leader: listens, and per accepted follower
//                streams the log — resync-from-base when the follower's
//                HELLO names a stale position, tail-of-chain otherwise —
//                plus heartbeats carrying the leader's position while the
//                log is idle. Sends are bounded by a timeout (a stuck
//                follower is disconnected, never blocks the leader), and
//                every outgoing frame can be routed through a
//                FaultInjector for the partition-and-resync suites.
//   LogReceiver  runs on a follower: maintains one connection (reconnect
//                with capped exponential backoff + seeded jitter), applies
//                BASE frames via ShardManager::Restore and DELTA frames
//                via ApplyDelta, answers QueryAll/CheckpointAll from the
//                replica for read scale-out, and reports a staleness bound
//                (entries behind the leader's last announced position).
//                Any framing damage — bad magic, failed checksum, an
//                index gap from a dropped frame, heartbeat silence — drops
//                the connection; the next connect's HELLO lets the leader
//                decide between tailing and a full resync. Optionally
//                persists every applied entry into the follower's own
//                ReplicatedLog, making the replica itself crash-safe.
//
// POSIX-only (sockets + poll); on _WIN32 both Start() calls return
// kUnimplemented. Thread model: the sender owns one accept thread plus one
// thread per follower connection; the receiver owns one connect/apply
// thread. Stop() (and the destructors) join everything.
#ifndef FKC_SERVING_REPLICATION_TRANSPORT_H_
#define FKC_SERVING_REPLICATION_TRANSPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serving/replication/fault_injector.h"
#include "serving/replication/replicated_log.h"
#include "serving/replication/wire_format.h"
#include "serving/shard_manager.h"

namespace fkc {
namespace serving {

/// Lifetime transport counters (monotone snapshots; volatile under
/// concurrency — gauges for tests and dashboards, not perf gates).
struct SenderStats {
  int64_t connections_accepted = 0;
  int64_t frames_sent = 0;      ///< delivered to the socket (incl. corrupt)
  int64_t heartbeats_sent = 0;
  int64_t resyncs_served = 0;   ///< connections answered with a full base
  int64_t send_errors = 0;      ///< timeouts + socket errors (conn dropped)
};

struct ReceiverStats {
  int64_t connects = 0;         ///< successful connections (first + re-)
  int64_t frames_received = 0;
  int64_t heartbeats_received = 0;
  int64_t bases_applied = 0;    ///< full resyncs absorbed
  int64_t deltas_applied = 0;
  int64_t decode_errors = 0;    ///< bad magic/checksum/gap -> reconnect
  int64_t gap_resyncs = 0;      ///< idle-link heartbeat proved a dropped tail
};

class LogSender {
 public:
  struct Options {
    /// Listen on this unix socket path when non-empty (the path is
    /// unlinked first; paths must fit sockaddr_un, ~100 bytes)…
    std::string unix_socket_path;
    /// …else on 127.0.0.1:tcp_port (0 = ephemeral; see port()).
    int tcp_port = 0;

    /// Leader position announcement cadence while the log is idle.
    std::chrono::milliseconds heartbeat_interval{100};
    /// Bound on one frame write: a follower stuck longer is disconnected
    /// (it reconnects and resyncs) so a slow consumer never wedges the
    /// leader's sender thread.
    std::chrono::milliseconds send_timeout{2000};
    /// How often a connection re-checks the log for new entries.
    std::chrono::milliseconds poll_interval{5};

    /// When set, every outgoing frame is routed through the injector's
    /// seeded drop/corrupt/truncate/delay schedule. Must outlive the
    /// sender.
    FaultInjector* fault_injector = nullptr;
  };

  /// `log` must outlive the sender and be Open()ed by the caller.
  LogSender(const ReplicatedLog* log, Options options);
  ~LogSender();  ///< Stop()s

  LogSender(const LogSender&) = delete;
  LogSender& operator=(const LogSender&) = delete;

  /// Binds, listens, and starts the accept thread. kFailedPrecondition if
  /// already started, kIoError when the address cannot be bound.
  Status Start();
  /// Joins the accept thread and every connection thread; idempotent.
  void Stop();

  /// The TCP port actually bound (after an ephemeral bind), 0 for unix
  /// sockets or before Start().
  int port() const;
  SenderStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Encodes + (fault-injected) sends one frame within send_timeout.
  Status SendFrame(int fd, const Frame& frame);

  const ReplicatedLog* log_;
  const Options options_;

  mutable std::mutex mu_;
  bool started_ = false;
  bool stopping_ = false;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Connection>> connections_;
  SenderStats stats_;
};

class LogReceiver {
 public:
  struct Options {
    /// Connect to this unix socket path when non-empty…
    std::string unix_socket_path;
    /// …else to 127.0.0.1:tcp_port.
    int tcp_port = 0;

    /// Max silence (no frame, not even a heartbeat) before the connection
    /// is presumed partitioned and re-dialed. Must exceed the sender's
    /// heartbeat_interval with margin.
    std::chrono::milliseconds receive_timeout{2000};

    /// Reconnect backoff: capped exponential with seeded jitter — attempt
    /// k sleeps uniform[0.5, 1) * min(initial_backoff * 2^k, max_backoff).
    std::chrono::milliseconds initial_backoff{10};
    std::chrono::milliseconds max_backoff{1000};
    uint64_t backoff_seed = 42;

    /// Execution/resource knobs of the replica fleet (as
    /// ShardManager::Restore).
    int num_threads = 1;
    int64_t max_live_shards = 0;
    std::shared_ptr<SpillStore> spill_store;

    /// When set, every applied BASE/DELTA is also AppendBase/AppendDelta'd
    /// into this (caller-Open()ed) log, so the follower itself restarts
    /// from disk. Must outlive the receiver.
    ReplicatedLog* local_log = nullptr;
  };

  /// How far behind the leader this replica may be. `entries_behind`
  /// counts capture entries (deltas, plus the base on a pending resync)
  /// the leader has announced but the replica has not applied — an upper
  /// bound on the replica's staleness as of the last frame heard; 0 with
  /// `connected` means "caught up as of the last heartbeat".
  struct StalenessBound {
    bool connected = false;
    bool has_fleet = false;         ///< a base has been applied
    int64_t applied_generation = 0;
    int64_t applied_entries = 0;    ///< base + deltas applied (this gen)
    int64_t leader_generation = 0;  ///< last announced leader position
    int64_t leader_entries = 0;
    int64_t entries_behind = 0;
  };

  /// `metric`/`solver` must outlive the receiver (shared by every restored
  /// replica fleet, like ShardManager's).
  LogReceiver(const Metric* metric, const FairCenterSolver* solver,
              Options options);
  ~LogReceiver();  ///< Stop()s

  LogReceiver(const LogReceiver&) = delete;
  LogReceiver& operator=(const LogReceiver&) = delete;

  /// Starts the connect/apply thread. kFailedPrecondition if already
  /// started.
  Status Start();
  /// Joins the thread; idempotent.
  void Stop();

  /// Read scale-out: answers from the replica fleet (empty before the
  /// first base arrives). The staleness bound says how stale the answers
  /// may be.
  std::vector<ShardAnswer> QueryAll();
  /// The replica fleet's checkpoint — byte-equal to the leader's once the
  /// staleness bound reaches 0 (the convergence assertion of the
  /// fault-injection suite). kFailedPrecondition before the first base.
  Result<std::string> CheckpointAll();
  std::vector<std::string> Keys() const;

  StalenessBound staleness() const;
  ReceiverStats stats() const;

 private:
  void RunLoop();
  int Connect();  ///< -1 on failure
  /// One connected session: HELLO, then apply frames until damage/stop.
  void DrainConnection(int fd);
  std::chrono::milliseconds NextBackoff(int attempt);
  /// Interruptible sleep (wakes early on Stop).
  void SleepInterruptible(std::chrono::milliseconds duration);

  const Metric* metric_;
  const FairCenterSolver* solver_;
  const Options options_;

  mutable std::mutex mu_;  ///< guards everything below + the replica fleet
  std::condition_variable stop_cv_;
  bool started_ = false;
  bool stopping_ = false;
  int active_fd_ = -1;  ///< shut down by Stop() to unblock a mid-read loop
  std::thread thread_;
  std::unique_ptr<ShardManager> fleet_;
  Rng backoff_rng_;
  StalenessBound staleness_;
  ReceiverStats stats_;
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_REPLICATION_TRANSPORT_H_
