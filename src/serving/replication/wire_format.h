// The replication stream's frame encoding, shared by LogSender and
// LogReceiver and factored out so the fault-injection tests can corrupt
// encoded frames and assert the decoder rejects every mutation.
//
// A frame is a fixed 46-byte header followed by `payload_size` raw bytes:
//
//   offset  size  field
//        0     4  magic "FKCR"
//        4     1  wire version (1)
//        5     1  frame type (FrameType)
//        6     8  generation      (little-endian unsigned)
//       14     8  index           (little-endian unsigned)
//       22     8  chain_length    (little-endian unsigned)
//       30     8  payload_size    (little-endian unsigned)
//       38     8  payload FNV-1a  (little-endian unsigned)
//       46     …  payload bytes
//
// The length prefix travels in the header (payload_size), so a reader
// always knows how many bytes to consume; the per-frame FNV-1a checksum
// covers the payload. Header integrity rides on the magic, the version
// byte, the type range, and a hard payload-size cap — a corrupted header
// fails one of those (or the payload checksum, since a wrong size
// misframes everything after it) and the receiver drops the connection
// and resyncs rather than applying garbage.
//
// Semantics per type:
//   kHello      follower -> leader on (re)connect: generation/index name
//               the next entry the follower wants (index 0 = the base).
//               No payload.
//   kBase       leader -> follower: a full CheckpointAll blob opening
//               `generation` (index is always 0).
//   kDelta      leader -> follower: the CheckpointDelta blob at `index`
//               (1-based) of `generation`.
//   kHeartbeat  leader -> follower when idle: no payload; carries the
//               leader's current position so a quiet follower still
//               learns how far behind it is (the staleness bound).
// Every leader->follower frame carries the leader's current position in
// (generation, chain_length).
#ifndef FKC_SERVING_REPLICATION_WIRE_FORMAT_H_
#define FKC_SERVING_REPLICATION_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace fkc {
namespace serving {

enum class FrameType : uint8_t {
  kHello = 1,
  kBase = 2,
  kDelta = 3,
  kHeartbeat = 4,
};

constexpr uint8_t kWireVersion = 1;
constexpr size_t kFrameHeaderBytes = 46;
/// Hard cap on a frame payload — far above any real checkpoint blob, low
/// enough that a corrupted size field cannot drive a multi-GiB allocation.
constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 30;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  int64_t generation = 0;
  int64_t index = 0;
  int64_t chain_length = 0;  ///< leader position (deltas in the chain)
  std::string payload;
};

/// Serializes `frame` (header + payload) for the wire.
std::string EncodeFrame(const Frame& frame);

/// Parses a fixed header from `data` (`size` >= kFrameHeaderBytes
/// required); on success fills everything but the payload and reports how
/// many payload bytes follow plus their expected checksum.
/// kInvalidArgument on a bad magic/version/type, a negative-looking or
/// over-cap size, or negative generation/index.
Status DecodeFrameHeader(const char* data, size_t size, Frame* frame,
                         uint64_t* payload_size, uint64_t* payload_checksum);

/// Verifies a received payload against the header's checksum and size.
Status CheckFramePayload(uint64_t expected_size, uint64_t expected_checksum,
                         const std::string& payload);

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_REPLICATION_WIRE_FORMAT_H_
