// Deterministic fault injection for the replication stack: a seeded
// schedule of frame-level transport faults (drop / corrupt / truncate /
// delay) and spill-store IO failures, so the kill-and-recover and
// partition-and-resync suites exercise the SAME misbehaviour on every run.
//
// One FaultInjector instance is a single fault budget shared by everything
// wrapped around it — the LogSender consults it per outgoing frame, a
// FaultInjectingSpillStore per Put/Get. Faults are drawn from one seeded
// Rng under a mutex, so a single-threaded driver replays bit-identically;
// under concurrency the SET of faults drawn is still bounded by the budget
// even though their interleaving varies. `max_faults` caps the total
// number of injected faults: once spent, every frame delivers and every
// write succeeds, which is what lets convergence tests assert a
// fault-ridden follower eventually matches the leader exactly.
#ifndef FKC_SERVING_REPLICATION_FAULT_INJECTOR_H_
#define FKC_SERVING_REPLICATION_FAULT_INJECTOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "serving/spill_store.h"

namespace fkc {
namespace serving {

class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 42;  ///< drives the whole schedule, bit-reproducibly

    /// Per-frame fault probabilities, evaluated in this order; the first
    /// hit wins, so they need not sum below 1.
    double drop_prob = 0.0;      ///< frame silently not sent
    double corrupt_prob = 0.0;   ///< one byte flipped at a seeded offset
    double truncate_prob = 0.0;  ///< only a seeded prefix sent, then EOF
    double delay_prob = 0.0;     ///< frame held for `delay` before sending
    std::chrono::milliseconds delay{2};

    /// Spill-store fault probabilities (FaultInjectingSpillStore).
    double write_failure_prob = 0.0;  ///< Put fails with kIoError
    double read_failure_prob = 0.0;   ///< Get fails with kIoError

    /// Total faults injected before the injector goes quiet (every later
    /// draw delivers/succeeds). Negative = unlimited. A finite budget is
    /// what makes "the follower converges despite faults" a theorem
    /// rather than a race.
    int64_t max_faults = -1;
  };

  /// What happens to one outgoing frame.
  enum class FrameFate { kDeliver, kDrop, kCorrupt, kTruncate, kDelay };

  /// Lifetime injection counts (monotone; snapshot of the internal state).
  struct Counters {
    int64_t frames_seen = 0;
    int64_t frames_dropped = 0;
    int64_t frames_corrupted = 0;
    int64_t frames_truncated = 0;
    int64_t frames_delayed = 0;
    int64_t failed_writes = 0;
    int64_t failed_reads = 0;
  };

  explicit FaultInjector(Options options);

  /// Draws the fate of the next frame from the seeded schedule.
  FrameFate NextFrameFate();

  /// Flips one byte of an encoded frame at a seeded offset (no-op on an
  /// empty buffer). The receiver's magic/checksum validation must catch
  /// the flip wherever it lands.
  void CorruptFrame(std::string* bytes);

  /// Seeded cut point in [0, frame_size) for a kTruncate fate.
  size_t TruncationPoint(size_t frame_size);

  /// True when the next spill-store Put / Get should fail.
  bool NextWriteFails();
  bool NextReadFails();

  std::chrono::milliseconds delay() const { return options_.delay; }
  Counters counters() const;

 private:
  /// True (and consumes budget) iff faults are still allowed. Requires mu_.
  bool SpendBudgetLocked();

  mutable std::mutex mu_;
  Options options_;
  Rng rng_;
  int64_t faults_spent_ = 0;
  Counters counters_;
};

/// A SpillStore that fails Put/Get on the injector's seeded schedule and
/// forwards everything else to the wrapped backend. Drives the
/// ShardManager's failure paths (a failed spill leaves the shard live, a
/// failed rehydration answers with a Status, MaintenanceStats counts both)
/// without needing a real full disk.
class FaultInjectingSpillStore : public SpillStore {
 public:
  /// `injector` must outlive the store.
  FaultInjectingSpillStore(std::shared_ptr<SpillStore> inner,
                           FaultInjector* injector);

  Status Put(const std::string& key, std::string blob) override;
  Result<std::string> Get(const std::string& key) const override;
  Status Erase(const std::string& key) override;
  Result<int64_t> GarbageCollect(const std::set<std::string>& keep) override;
  Result<int64_t> Count() const override;
  const char* Name() const override { return name_.c_str(); }

 private:
  std::shared_ptr<SpillStore> inner_;
  FaultInjector* injector_;
  std::string name_;
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_REPLICATION_FAULT_INJECTOR_H_
