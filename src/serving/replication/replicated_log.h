// A crash-safe DeltaLog: the same base-plus-delta-chain capture contract
// (serving/delta_log.h), but every entry is ALSO published to a directory
// before Capture reports success, so a SIGKILL'd leader reconstructs its
// entire ShardManager fleet on restart by replaying the on-disk chain.
//
// On-disk layout (all IO through common/fs_util's atomic-publish helpers):
//
//   <dir>/MANIFEST               fkc-replog-manifest-v1 <checksum> <gen>
//   <dir>/seg-<gen>-<index>.seg  fkc-replog-seg-v1 <checksum> <gen> <index>
//                                <length-prefixed payload>
//
// One segment file per entry: index 0 is the generation's base (a full
// CheckpointAll blob), indexes 1..N its deltas, in capture order. Each
// file embeds an FNV-1a checksum over everything after the checksum token,
// and is published with WriteFileAtomic (write temp, fsync, rename, fsync
// directory), so a crash mid-append leaves either the previous chain or
// the extended chain — never a half-written segment under a live name. A
// re-base opens generation G+1: its base is written (and the MANIFEST
// updated) before generation G's files are retired with durable unlinks.
//
// Recovery (Open) trusts only what validates: it adopts the HIGHEST
// generation whose base segment decodes, then walks that generation's
// chain in index order and stops at the first missing or corrupt segment —
// the torn tail is truncated (the bad file deleted, later orphans swept)
// and the log continues from the surviving prefix, never aborting. The
// MANIFEST is an advisory fast-path and operator breadcrumb, not the
// source of truth: a torn or stale manifest is rebuilt from the scan.
// Because every Capture is atomic-published, the recovered prefix is
// always some exact capture boundary, and Replay of it is byte-equal (per
// shard) to the fleet as of that capture — the kill-and-recover tests
// assert exactly this at every truncation point.
//
// The same class serves both ends of the wire: a leader Captures into it
// (typically via MaintenanceOptions::replicated_log) and a LogSender
// streams EntriesFrom() to followers; a follower's LogReceiver can
// AppendBase/AppendDelta received entries into its own ReplicatedLog so
// the follower survives ITS next kill too.
//
// Thread-safe like DeltaLog: one internal mutex serializes Capture,
// appends, Replay, and accessors.
#ifndef FKC_SERVING_REPLICATION_REPLICATED_LOG_H_
#define FKC_SERVING_REPLICATION_REPLICATED_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/delta_log.h"
#include "serving/shard_manager.h"

namespace fkc {
namespace serving {

class ReplicatedLog {
 public:
  struct Options {
    /// Chain budgets, as in DeltaLog::Options: exceeding either makes the
    /// next Capture re-base into a fresh generation.
    int64_t max_chain_length = 16;
    int64_t max_chain_bytes = int64_t{1} << 26;  // 64 MiB
  };

  /// What Open() found (and repaired) on disk.
  struct RecoveryStats {
    int64_t recovered_entries = 0;   ///< base + deltas adopted from disk
    int64_t truncated_segments = 0;  ///< torn/corrupt tail files dropped
    int64_t swept_files = 0;  ///< stale-generation files + debris removed
    bool manifest_rebuilt = false;  ///< MANIFEST was absent, torn, or stale
  };

  /// One log entry, as shipped to followers. index 0 is the generation's
  /// base (CheckpointAll bytes); 1..N its deltas (CheckpointDelta bytes).
  struct Entry {
    int64_t generation = 0;
    int64_t index = 0;
    std::string payload;
  };

  explicit ReplicatedLog(std::string directory);
  ReplicatedLog(std::string directory, Options options);

  /// Recovers the log from `directory` (created if absent) — see the file
  /// comment for the adoption rules. Must be called once before any other
  /// method; every later call fails with kFailedPrecondition until Open
  /// has returned OK. Never fails on torn or corrupt segments (they are
  /// truncated away); only on directory-level IO trouble.
  Status Open();

  /// DeltaLog::Capture with durability: checkpoints `manager` (full blob
  /// when re-basing or on the first call, delta otherwise), publishes the
  /// segment file, and only then extends the in-memory chain. On a failed
  /// segment write the delta's bytes are NOT adopted and the next Capture
  /// is forced to re-base into a new generation — the manager's dirty bits
  /// were already consumed by CheckpointDelta, so the full re-base is what
  /// guarantees the lost delta's changes still reach the log. The same
  /// single-consumer dirty-bit rule as DeltaLog applies.
  Result<DeltaLog::CaptureStats> Capture(ShardManager* manager);

  /// Follower-side appends (the LogReceiver persisting what it applied).
  /// AppendBase opens `generation` (replacing any current chain, retiring
  /// the previous generation's files); AppendDelta must continue the
  /// current generation at exactly chain_length() + 1, else
  /// kFailedPrecondition (an out-of-order delivery — resync instead).
  Status AppendBase(int64_t generation, const std::string& payload);
  Status AppendDelta(int64_t generation, int64_t index,
                     const std::string& payload);

  /// Replays the in-memory (= durable) chain: Restore(base) then
  /// ApplyDelta per entry, as DeltaLog::Replay. kFailedPrecondition while
  /// the log is empty.
  Result<ShardManager> Replay(
      const Metric* metric, const FairCenterSolver* solver,
      int num_threads = 1, int64_t max_live_shards = 0,
      std::shared_ptr<SpillStore> spill_store = nullptr) const;

  /// Entries at or after `from_index` of `generation`, in order — what a
  /// follower at that position still needs. A stale or unknown
  /// `generation` (and any from_index past the chain on it) returns the
  /// WHOLE current chain, base first: the resync-from-base rule.
  std::vector<Entry> EntriesFrom(int64_t generation,
                                 int64_t from_index) const;

  bool has_base() const;
  /// Current generation number (0 while empty; the first base opens 1).
  int64_t generation() const;
  size_t chain_length() const;  ///< deltas in the current generation
  int64_t chain_bytes() const;
  int64_t rebases() const;  ///< re-bases performed (initial base excluded)
  RecoveryStats recovery_stats() const;
  const std::string& directory() const { return directory_; }

 private:
  Status OpenedLocked() const;  ///< kFailedPrecondition before Open()
  std::string SegmentPath(int64_t generation, int64_t index) const;
  /// Publishes one entry's segment file (atomic + durable).
  Status WriteSegment(int64_t generation, int64_t index,
                      const std::string& payload) const;
  /// Publishes the MANIFEST for `generation`.
  Status WriteManifest(int64_t generation) const;
  /// Best-effort retirement of every on-disk segment except
  /// `keep_generation`'s base (one directory sync for the batch) — run
  /// after a base adoption, whose chain is by definition empty.
  void SweepOtherGenerationsLocked(int64_t keep_generation);
  /// Shared tail of AppendBase/Capture-rebase: adopt `payload` as the base
  /// of `new_generation` in memory, publish the manifest, retire old
  /// files. Requires mu_; the segment file must already be on disk.
  Status AdoptBaseLocked(int64_t new_generation, std::string payload);

  const std::string directory_;
  const Options options_;

  mutable std::mutex mu_;
  bool opened_ = false;
  /// Set by a failed delta publish: the bytes CheckpointDelta consumed
  /// never reached the chain, so only a full re-base recovers them.
  bool force_rebase_ = false;
  int64_t generation_ = 0;
  bool has_base_ = false;
  std::string base_;
  std::vector<std::string> chain_;
  int64_t chain_bytes_ = 0;
  int64_t rebases_ = 0;
  RecoveryStats recovery_stats_;
};

}  // namespace serving
}  // namespace fkc

#endif  // FKC_SERVING_REPLICATION_REPLICATED_LOG_H_
