#include "serving/replication/replicated_log.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "common/checkpoint_io.h"
#include "common/fs_util.h"
#include "common/string_util.h"

namespace fkc {
namespace serving {
namespace {

// Segment file layout (mirrors the spill-file convention):
//   fkc-replog-seg-v1 <checksum> <generation> <index> <raw payload>
// with <checksum> the hex FNV-1a 64 over everything after its trailing
// space. The generation/index travel INSIDE the checksummed body and must
// match the filename, so a renamed or cross-copied segment cannot be
// adopted at the wrong position.
constexpr const char* kSegmentMagic = "fkc-replog-seg-v1";
constexpr const char* kManifestMagic = "fkc-replog-manifest-v1";
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kSegmentSuffix = ".seg";

std::string EncodeChecksummed(const char* magic, const std::string& body) {
  return StrFormat("%s %016llx ", magic,
                   static_cast<unsigned long long>(Fnv1a64(body))) +
         body;
}

// Validates "<magic> <checksum> " and the checksum over the remainder,
// which is returned through `body`.
Status DecodeChecksummed(const char* magic, const std::string& file,
                         std::string* body) {
  const std::string prefix = std::string(magic) + ' ';
  if (file.compare(0, prefix.size(), prefix) != 0) {
    return Status::InvalidArgument(std::string("bad magic (expected ") +
                                   magic + ")");
  }
  const size_t checksum_end = file.find(' ', prefix.size());
  if (checksum_end == std::string::npos) {
    return Status::InvalidArgument("truncated header");
  }
  const std::string checksum_hex =
      file.substr(prefix.size(), checksum_end - prefix.size());
  char* end = nullptr;
  const uint64_t checksum = std::strtoull(checksum_hex.c_str(), &end, 16);
  if (checksum_hex.empty() ||
      end != checksum_hex.c_str() + checksum_hex.size()) {
    return Status::InvalidArgument("unparsable checksum");
  }
  *body = file.substr(checksum_end + 1);
  if (Fnv1a64(*body) != checksum) {
    return Status::InvalidArgument("checksum mismatch (torn write/bit rot)");
  }
  return Status::OK();
}

std::string EncodeSegment(int64_t generation, int64_t index,
                          const std::string& payload) {
  std::ostringstream body;
  body << generation << ' ' << index << ' ';
  WriteCheckpointRaw(&body, payload);
  return EncodeChecksummed(kSegmentMagic, std::move(body).str());
}

// Full validation of a segment file's bytes against its expected position.
Status DecodeSegment(const std::string& file, int64_t expected_generation,
                     int64_t expected_index, std::string* payload) {
  std::string body;
  FKC_RETURN_IF_ERROR(DecodeChecksummed(kSegmentMagic, file, &body));
  CheckpointReader reader(body);
  int64_t generation = 0;
  int64_t index = 0;
  FKC_RETURN_IF_ERROR(reader.NextInt(&generation));
  FKC_RETURN_IF_ERROR(reader.NextInt(&index));
  if (generation != expected_generation || index != expected_index) {
    return Status::InvalidArgument(
        "segment position does not match its filename");
  }
  FKC_RETURN_IF_ERROR(reader.NextRaw(payload));
  return Status::OK();
}

// "seg-<gen>-<index>.seg" -> (gen, index); false for any other name.
bool ParseSegmentName(const std::string& name, int64_t* generation,
                      int64_t* index) {
  long long gen = 0;
  long long idx = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "seg-%lld-%lld.seg%n", &gen, &idx,
                  &consumed) != 2 ||
      static_cast<size_t>(consumed) != name.size() || gen < 1 || idx < 0) {
    return false;
  }
  *generation = gen;
  *index = idx;
  return true;
}

}  // namespace

ReplicatedLog::ReplicatedLog(std::string directory)
    : ReplicatedLog(std::move(directory), Options()) {}

ReplicatedLog::ReplicatedLog(std::string directory, Options options)
    : directory_(std::move(directory)), options_(options) {}

Status ReplicatedLog::OpenedLocked() const {
  if (!opened_) {
    return Status::FailedPrecondition("replicated log is not open");
  }
  return Status::OK();
}

std::string ReplicatedLog::SegmentPath(int64_t generation,
                                       int64_t index) const {
  return directory_ + "/" +
         StrFormat("seg-%lld-%lld%s", static_cast<long long>(generation),
                   static_cast<long long>(index), kSegmentSuffix);
}

Status ReplicatedLog::WriteSegment(int64_t generation, int64_t index,
                                   const std::string& payload) const {
  return WriteFileAtomic(SegmentPath(generation, index),
                         EncodeSegment(generation, index, payload));
}

Status ReplicatedLog::WriteManifest(int64_t generation) const {
  return WriteFileAtomic(
      directory_ + "/" + kManifestName,
      EncodeChecksummed(kManifestMagic,
                        StrFormat("%lld", static_cast<long long>(generation))));
}

void ReplicatedLog::SweepOtherGenerationsLocked(int64_t keep_generation) {
  std::vector<std::string> files;
  if (!ListDirectoryFiles(directory_, &files).ok()) return;  // best-effort
  bool removed_any = false;
  for (const std::string& name : files) {
    int64_t generation = 0;
    int64_t index = 0;
    if (!ParseSegmentName(name, &generation, &index)) continue;
    // Keep only the adopted base itself: a base adoption resets the chain
    // to empty, so same-generation delta files (possible when a follower
    // re-receives its current generation's base on resync) must go too —
    // a restart would otherwise re-adopt a chain the in-memory state no
    // longer describes.
    if (generation == keep_generation && index == 0) continue;
    if (RemoveFileIfExists(directory_ + "/" + name).ok()) removed_any = true;
  }
  // One directory sync for the whole batch; a failure only delays the
  // retirement to the next sweep or the next Open.
  if (removed_any) SyncDirectory(directory_);
}

Status ReplicatedLog::AdoptBaseLocked(int64_t new_generation,
                                      std::string payload) {
  if (has_base_) ++rebases_;
  generation_ = new_generation;
  base_ = std::move(payload);
  has_base_ = true;
  chain_.clear();
  chain_bytes_ = 0;
  force_rebase_ = false;
  // The base segment is already durable, and recovery adopts the highest
  // valid base regardless of the manifest — so a manifest failure here
  // cannot lose the capture, only the fast-path breadcrumb. Old-generation
  // files are retired after the manifest flips, never before.
  Status manifest = WriteManifest(new_generation);
  SweepOtherGenerationsLocked(new_generation);
  return manifest;
}

Status ReplicatedLog::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_) {
    return Status::FailedPrecondition("replicated log is already open");
  }
  FKC_RETURN_IF_ERROR(EnsureDirectory(directory_));
  std::vector<std::string> files;
  FKC_RETURN_IF_ERROR(ListDirectoryFiles(directory_, &files));

  // Partition the directory: parsable segment names by (generation,
  // index), everything else (temp debris from a kill mid-publish,
  // unparsable names) is sweepable.
  std::map<int64_t, std::map<int64_t, std::string>> segments;
  std::vector<std::string> debris;
  bool manifest_present = false;
  for (const std::string& name : files) {
    if (name == kManifestName) {
      manifest_present = true;
      continue;
    }
    int64_t generation = 0;
    int64_t index = 0;
    if (ParseSegmentName(name, &generation, &index)) {
      segments[generation][index] = name;
    } else {
      debris.push_back(name);
    }
  }

  // The manifest is advisory; read it only to know whether it needs a
  // rebuild once the scan has decided.
  int64_t manifest_generation = -1;
  if (manifest_present) {
    std::string file;
    std::string body;
    if (ReadFileToString(directory_ + "/" + kManifestName, &file).ok() &&
        DecodeChecksummed(kManifestMagic, file, &body).ok()) {
      char* end = nullptr;
      const long long parsed = std::strtoll(body.c_str(), &end, 10);
      if (end != body.c_str() && *end == '\0' && parsed >= 1) {
        manifest_generation = parsed;
      }
    }
  }

  // Adopt the HIGHEST generation whose base decodes. A generation whose
  // base is torn is unusable no matter what deltas follow — fall through
  // to the previous one (present only when a crash interrupted a re-base
  // before its retirement sweep, which is exactly when falling back is
  // correct).
  std::vector<std::string> doomed;  // corrupt/orphan files to delete
  for (auto gen_it = segments.rbegin(); gen_it != segments.rend(); ++gen_it) {
    const int64_t generation = gen_it->first;
    auto& by_index = gen_it->second;
    auto base_it = by_index.find(0);
    if (base_it == by_index.end()) continue;  // base never published
    std::string file;
    if (!ReadFileToString(directory_ + "/" + base_it->second, &file).ok()) {
      // Unreadable (not provably corrupt): skip this generation without
      // deleting anything — a transient read failure must not destroy
      // the only copy.
      continue;
    }
    std::string payload;
    if (!DecodeSegment(file, generation, 0, &payload).ok()) {
      ++recovery_stats_.truncated_segments;
      doomed.push_back(base_it->second);
      continue;
    }
    // Base adopted; walk the chain and truncate at the first hole or
    // corrupt segment.
    generation_ = generation;
    has_base_ = true;
    base_ = std::move(payload);
    for (int64_t index = 1;; ++index) {
      auto seg_it = by_index.find(index);
      if (seg_it == by_index.end()) break;  // end of the published chain
      std::string seg_file;
      std::string seg_payload;
      if (!ReadFileToString(directory_ + "/" + seg_it->second, &seg_file)
               .ok() ||
          !DecodeSegment(seg_file, generation, index, &seg_payload).ok()) {
        // Torn tail: drop this segment and everything past it (orphans
        // behind a gap are unreachable by replay) and continue from the
        // surviving prefix.
        for (auto tail = seg_it; tail != by_index.end(); ++tail) {
          ++recovery_stats_.truncated_segments;
          doomed.push_back(tail->second);
        }
        break;
      }
      chain_bytes_ += static_cast<int64_t>(seg_payload.size());
      chain_.push_back(std::move(seg_payload));
    }
    break;
  }

  if (has_base_) {
    recovery_stats_.recovered_entries =
        1 + static_cast<int64_t>(chain_.size());
    // Retire every other generation's files (stale or too new to use).
    for (const auto& [generation, by_index] : segments) {
      if (generation == generation_) continue;
      for (const auto& [index, name] : by_index) {
        ++recovery_stats_.swept_files;
        doomed.push_back(name);
      }
    }
  }
  for (const std::string& name : debris) {
    ++recovery_stats_.swept_files;
    doomed.push_back(name);
  }
  bool removed_any = false;
  for (const std::string& name : doomed) {
    if (RemoveFileIfExists(directory_ + "/" + name).ok()) removed_any = true;
  }
  if (removed_any) SyncDirectory(directory_);

  if (has_base_ && manifest_generation != generation_) {
    recovery_stats_.manifest_rebuilt = true;
    WriteManifest(generation_);  // best-effort: advisory only
  } else if (!has_base_ && manifest_present) {
    // A manifest with no recoverable generation behind it only misleads.
    recovery_stats_.manifest_rebuilt = true;
    RemoveFileDurable(directory_ + "/" + kManifestName);
  }

  opened_ = true;
  return Status::OK();
}

Result<DeltaLog::CaptureStats> ReplicatedLog::Capture(ShardManager* manager) {
  // Like DeltaLog::Capture, mu_ is held across the manager's epoch
  // snapshot: the manager takes no lock of ours and its ingest/query paths
  // take none of the locks a checkpoint holds long-term.
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(OpenedLocked());
  DeltaLog::CaptureStats stats;

  const bool rebase =
      !has_base_ || force_rebase_ ||
      static_cast<int64_t>(chain_.size()) >= options_.max_chain_length ||
      chain_bytes_ >= options_.max_chain_bytes;
  if (rebase) {
    auto full = manager->CheckpointAll();
    if (!full.ok()) return full.status();
    const int64_t new_generation = generation_ + 1;
    // Publish before adopting: a kill after this line recovers the new
    // generation, a kill before it recovers the old one — never neither.
    FKC_RETURN_IF_ERROR(
        WriteSegment(new_generation, 0, full.value()));
    stats.rebased = true;
    stats.bytes = full.value().size();
    FKC_RETURN_IF_ERROR(
        AdoptBaseLocked(new_generation, std::move(full).value()));
  } else {
    auto delta = manager->CheckpointDelta();
    if (!delta.ok()) return delta.status();
    const int64_t index = static_cast<int64_t>(chain_.size()) + 1;
    Status published = WriteSegment(generation_, index, delta.value());
    if (!published.ok()) {
      // CheckpointDelta already consumed the dirty bits, so these bytes
      // exist nowhere durable. Do NOT adopt them in memory (memory and
      // disk must describe the same chain); force the next Capture to
      // re-base, which re-ships the full fleet including these changes.
      force_rebase_ = true;
      return published;
    }
    stats.bytes = delta.value().size();
    chain_bytes_ += static_cast<int64_t>(delta.value().size());
    chain_.push_back(std::move(delta).value());
  }
  stats.chain_length = chain_.size();
  return stats;
}

Status ReplicatedLog::AppendBase(int64_t generation,
                                 const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(OpenedLocked());
  if (generation < 1) {
    return Status::InvalidArgument("generation numbers start at 1");
  }
  FKC_RETURN_IF_ERROR(WriteSegment(generation, 0, payload));
  return AdoptBaseLocked(generation, payload);
}

Status ReplicatedLog::AppendDelta(int64_t generation, int64_t index,
                                  const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(OpenedLocked());
  if (!has_base_ || generation != generation_ ||
      index != static_cast<int64_t>(chain_.size()) + 1) {
    return Status::FailedPrecondition(StrFormat(
        "out-of-order append (%lld,%lld) onto generation %lld with %zu "
        "deltas — resync from the base instead",
        static_cast<long long>(generation), static_cast<long long>(index),
        static_cast<long long>(generation_), chain_.size()));
  }
  FKC_RETURN_IF_ERROR(WriteSegment(generation, index, payload));
  chain_bytes_ += static_cast<int64_t>(payload.size());
  chain_.push_back(payload);
  return Status::OK();
}

Result<ShardManager> ReplicatedLog::Replay(
    const Metric* metric, const FairCenterSolver* solver, int num_threads,
    int64_t max_live_shards, std::shared_ptr<SpillStore> spill_store) const {
  std::lock_guard<std::mutex> lock(mu_);
  FKC_RETURN_IF_ERROR(OpenedLocked());
  if (!has_base_) {
    return Status::FailedPrecondition(
        "replicated log has no base checkpoint yet");
  }
  auto manager =
      ShardManager::Restore(base_, metric, solver, num_threads,
                            max_live_shards, std::move(spill_store));
  if (!manager.ok()) return manager.status();
  for (const std::string& delta : chain_) {
    FKC_RETURN_IF_ERROR(manager.value().ApplyDelta(delta));
  }
  return manager;
}

std::vector<ReplicatedLog::Entry> ReplicatedLog::EntriesFrom(
    int64_t generation, int64_t from_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  if (!opened_ || !has_base_) return entries;
  int64_t start = from_index;
  if (generation != generation_ || start < 0 ||
      start > static_cast<int64_t>(chain_.size()) + 1) {
    start = 0;  // resync from the base
  }
  if (start == 0) {
    entries.push_back(Entry{generation_, 0, base_});
    start = 1;
  }
  for (int64_t index = start;
       index <= static_cast<int64_t>(chain_.size()); ++index) {
    entries.push_back(
        Entry{generation_, index, chain_[static_cast<size_t>(index - 1)]});
  }
  return entries;
}

bool ReplicatedLog::has_base() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_base_;
}

int64_t ReplicatedLog::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

size_t ReplicatedLog::chain_length() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_.size();
}

int64_t ReplicatedLog::chain_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_bytes_;
}

int64_t ReplicatedLog::rebases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebases_;
}

ReplicatedLog::RecoveryStats ReplicatedLog::recovery_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_stats_;
}

}  // namespace serving
}  // namespace fkc
