#include "serving/replication/wire_format.h"

#include <cstring>

#include "common/fs_util.h"

namespace fkc {
namespace serving {

namespace {

constexpr char kMagic[4] = {'F', 'K', 'C', 'R'};

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(frame.type));
  PutU64(&out, static_cast<uint64_t>(frame.generation));
  PutU64(&out, static_cast<uint64_t>(frame.index));
  PutU64(&out, static_cast<uint64_t>(frame.chain_length));
  PutU64(&out, static_cast<uint64_t>(frame.payload.size()));
  PutU64(&out, Fnv1a64(frame.payload));
  out.append(frame.payload);
  return out;
}

Status DecodeFrameHeader(const char* data, size_t size, Frame* frame,
                         uint64_t* payload_size, uint64_t* payload_checksum) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument("replication frame header truncated");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("replication frame has a bad magic");
  }
  if (static_cast<uint8_t>(data[4]) != kWireVersion) {
    return Status::InvalidArgument("unsupported replication wire version");
  }
  const uint8_t raw_type = static_cast<uint8_t>(data[5]);
  if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(FrameType::kHeartbeat)) {
    return Status::InvalidArgument("unknown replication frame type");
  }
  const uint64_t generation = GetU64(data + 6);
  const uint64_t index = GetU64(data + 14);
  const uint64_t chain_length = GetU64(data + 22);
  const uint64_t body = GetU64(data + 30);
  // A flipped sign bit in any position field, or an over-cap payload size,
  // marks the header as garbage: positions are small non-negative counts.
  if (generation > static_cast<uint64_t>(INT64_MAX) ||
      index > static_cast<uint64_t>(INT64_MAX) ||
      chain_length > static_cast<uint64_t>(INT64_MAX)) {
    return Status::InvalidArgument("replication frame position out of range");
  }
  if (body > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("replication frame payload exceeds cap");
  }
  frame->type = static_cast<FrameType>(raw_type);
  frame->generation = static_cast<int64_t>(generation);
  frame->index = static_cast<int64_t>(index);
  frame->chain_length = static_cast<int64_t>(chain_length);
  frame->payload.clear();
  *payload_size = body;
  *payload_checksum = GetU64(data + 38);
  return Status::OK();
}

Status CheckFramePayload(uint64_t expected_size, uint64_t expected_checksum,
                         const std::string& payload) {
  if (payload.size() != expected_size) {
    return Status::InvalidArgument("replication frame payload size mismatch");
  }
  if (Fnv1a64(payload) != expected_checksum) {
    return Status::InvalidArgument(
        "replication frame payload failed its checksum");
  }
  return Status::OK();
}

}  // namespace serving
}  // namespace fkc
