#include "matroid/matroid_intersection.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace fkc {
namespace {

// Removes `x` from a copy of `set` and appends `y`.
std::vector<int> SwapElement(const std::vector<int>& set, int x, int y) {
  std::vector<int> out;
  out.reserve(set.size());
  for (int e : set) {
    if (e != x) out.push_back(e);
  }
  out.push_back(y);
  return out;
}

// One augmentation round: finds a shortest X1 -> X2 path in the exchange
// graph and applies the symmetric difference. Returns false when no
// augmenting path exists (S is maximum).
bool Augment(const Matroid& m1, const Matroid& m2, std::vector<int>* current) {
  const int n = m1.GroundSize();
  std::vector<bool> in_set(n, false);
  for (int e : *current) in_set[e] = true;

  // Sources: elements addable w.r.t. m1. Sinks: addable w.r.t. m2.
  std::vector<bool> is_source(n, false);
  std::vector<bool> is_sink(n, false);
  for (int y = 0; y < n; ++y) {
    if (in_set[y]) continue;
    if (m1.CanAdd(*current, y)) is_source[y] = true;
    if (m2.CanAdd(*current, y)) is_sink[y] = true;
  }

  // BFS over the exchange graph from all sources simultaneously.
  std::vector<int> parent(n, -2);  // -2 unvisited, -1 root
  std::queue<int> frontier;
  for (int y = 0; y < n; ++y) {
    if (is_source[y]) {
      parent[y] = -1;
      frontier.push(y);
    }
  }

  int reached_sink = -1;
  // Exchange arcs: for x in S, y not in S:
  //   x -> y  if  S - x + y independent in m1
  //   y -> x  if  S - x + y independent in m2
  while (!frontier.empty() && reached_sink == -1) {
    const int u = frontier.front();
    frontier.pop();
    if (!in_set[u] && is_sink[u]) {
      reached_sink = u;
      break;
    }
    if (in_set[u]) {
      // u = x in S: arcs x -> y for y outside.
      for (int y = 0; y < n && reached_sink == -1; ++y) {
        if (in_set[y] || parent[y] != -2) continue;
        if (m1.IsIndependent(SwapElement(*current, u, y))) {
          parent[y] = u;
          if (is_sink[y]) {
            reached_sink = y;
            break;
          }
          frontier.push(y);
        }
      }
    } else {
      // u = y outside S: arcs y -> x for x inside.
      for (int x : *current) {
        if (parent[x] != -2) continue;
        if (m2.IsIndependent(SwapElement(*current, x, u))) {
          parent[x] = u;
          frontier.push(x);
        }
      }
    }
  }

  if (reached_sink == -1) return false;

  // Apply the symmetric difference along the path: elements outside S on the
  // path are added, elements inside are removed.
  std::vector<bool> next_in_set = in_set;
  for (int v = reached_sink; v != -1; v = parent[v]) {
    next_in_set[v] = !next_in_set[v];
  }
  current->clear();
  for (int e = 0; e < n; ++e) {
    if (next_in_set[e]) current->push_back(e);
  }
  return true;
}

}  // namespace

std::vector<int> MaxCommonIndependentSet(const Matroid& m1,
                                         const Matroid& m2) {
  FKC_CHECK_EQ(m1.GroundSize(), m2.GroundSize());
  std::vector<int> current;
  while (Augment(m1, m2, &current)) {
    // Each augmentation grows the common independent set by exactly one.
    FKC_CHECK(m1.IsIndependent(current));
    FKC_CHECK(m2.IsIndependent(current));
  }
  return current;
}

bool HasCommonIndependentSetOfSize(const Matroid& m1, const Matroid& m2,
                                   int target) {
  return static_cast<int>(MaxCommonIndependentSet(m1, m2).size()) >= target;
}

}  // namespace fkc
