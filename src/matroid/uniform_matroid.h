// The uniform matroid U(k, n): independent iff at most k elements. Fair
// center with a single color degenerates to this, which makes it the bridge
// between the fair solvers and the classic unconstrained k-center problem in
// tests.
#ifndef FKC_MATROID_UNIFORM_MATROID_H_
#define FKC_MATROID_UNIFORM_MATROID_H_

#include "matroid/matroid.h"

namespace fkc {

class UniformMatroid final : public Matroid {
 public:
  /// U(k, n): subsets of [0, n) with at most k elements are independent.
  UniformMatroid(int k, int n);

  int GroundSize() const override { return n_; }
  bool IsIndependent(const std::vector<int>& elements) const override;
  bool CanAdd(const std::vector<int>& independent_set,
              int element) const override;
  int Rank() const override;
  std::string Name() const override { return "uniform"; }

 private:
  int k_;
  int n_;
};

}  // namespace fkc

#endif  // FKC_MATROID_UNIFORM_MATROID_H_
