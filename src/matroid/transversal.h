// Transversal matroid: ground elements are the left vertices of a bipartite
// graph; a set is independent iff it can be completely matched into the right
// side. Included to demonstrate (and test) that the matroid-center machinery
// is genuinely matroid-generic, beyond the partition case the paper needs.
#ifndef FKC_MATROID_TRANSVERSAL_H_
#define FKC_MATROID_TRANSVERSAL_H_

#include "matching/bipartite_graph.h"
#include "matroid/matroid.h"

namespace fkc {

class TransversalMatroid final : public Matroid {
 public:
  /// Ground elements are the left vertices of `graph`.
  explicit TransversalMatroid(BipartiteGraph graph);

  int GroundSize() const override { return graph_.left_size(); }
  bool IsIndependent(const std::vector<int>& elements) const override;
  int Rank() const override;
  std::string Name() const override { return "transversal"; }

 private:
  BipartiteGraph graph_;
};

}  // namespace fkc

#endif  // FKC_MATROID_TRANSVERSAL_H_
