#include "matroid/uniform_matroid.h"

#include <algorithm>

#include "common/logging.h"

namespace fkc {

UniformMatroid::UniformMatroid(int k, int n) : k_(k), n_(n) {
  FKC_CHECK_GE(k, 0);
  FKC_CHECK_GE(n, 0);
}

bool UniformMatroid::IsIndependent(const std::vector<int>& elements) const {
  for (int e : elements) {
    FKC_CHECK_GE(e, 0);
    FKC_CHECK_LT(e, n_);
  }
  return static_cast<int>(elements.size()) <= k_;
}

bool UniformMatroid::CanAdd(const std::vector<int>& independent_set,
                            int element) const {
  FKC_CHECK_GE(element, 0);
  FKC_CHECK_LT(element, n_);
  return static_cast<int>(independent_set.size()) < k_;
}

int UniformMatroid::Rank() const { return std::min(k_, n_); }

}  // namespace fkc
