#include "matroid/partition_matroid.h"

#include <algorithm>

#include "common/logging.h"

namespace fkc {

PartitionMatroid::PartitionMatroid(std::vector<int> element_colors,
                                   ColorConstraint constraint)
    : element_colors_(std::move(element_colors)),
      constraint_(std::move(constraint)) {
  for (int color : element_colors_) {
    FKC_CHECK_GE(color, 0);
    FKC_CHECK_LT(color, constraint_.ell());
  }
}

PartitionMatroid PartitionMatroid::OverPoints(
    const std::vector<Point>& points, const ColorConstraint& constraint) {
  std::vector<int> colors;
  colors.reserve(points.size());
  for (const Point& p : points) colors.push_back(p.color);
  return PartitionMatroid(std::move(colors), constraint);
}

bool PartitionMatroid::IsIndependent(const std::vector<int>& elements) const {
  std::vector<int> counts(constraint_.ell(), 0);
  for (int e : elements) {
    FKC_CHECK_GE(e, 0);
    FKC_CHECK_LT(e, GroundSize());
    const int color = element_colors_[e];
    if (++counts[color] > constraint_.cap(color)) return false;
  }
  return true;
}

bool PartitionMatroid::CanAdd(const std::vector<int>& independent_set,
                              int element) const {
  const int color = element_colors_[element];
  int count = 0;
  for (int e : independent_set) {
    if (element_colors_[e] == color) ++count;
  }
  return count < constraint_.cap(color);
}

int PartitionMatroid::Rank() const {
  // Rank = sum over colors of min(cap, #elements of that color).
  std::vector<int> counts(constraint_.ell(), 0);
  for (int color : element_colors_) ++counts[color];
  int rank = 0;
  for (int i = 0; i < constraint_.ell(); ++i) {
    rank += std::min(counts[i], constraint_.cap(i));
  }
  return rank;
}

}  // namespace fkc
