// Maximum-cardinality matroid intersection via shortest augmenting paths in
// the exchange graph (Schrijver's presentation). This powers the
// general-matroid path of the Chen et al. matroid-center baseline: picking
// one center from each of a family of disjoint candidate balls such that the
// picks are independent is an intersection of the input matroid with a
// partition matroid over the balls.
#ifndef FKC_MATROID_MATROID_INTERSECTION_H_
#define FKC_MATROID_MATROID_INTERSECTION_H_

#include <vector>

#include "matroid/matroid.h"

namespace fkc {

/// Returns a maximum-cardinality set independent in both matroids.
/// The matroids must share the same ground size. Runs in
/// O(r^2 * n) independence-oracle calls per augmentation (n = ground size),
/// fine for the coreset-scale inputs this library feeds it.
std::vector<int> MaxCommonIndependentSet(const Matroid& m1, const Matroid& m2);

/// Convenience: true iff a common independent set of size `target` exists.
bool HasCommonIndependentSetOfSize(const Matroid& m1, const Matroid& m2,
                                   int target);

}  // namespace fkc

#endif  // FKC_MATROID_MATROID_INTERSECTION_H_
