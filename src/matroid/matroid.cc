#include "matroid/matroid.h"

#include <algorithm>

#include "common/logging.h"

namespace fkc {

bool Matroid::CanAdd(const std::vector<int>& independent_set,
                     int element) const {
  std::vector<int> extended = independent_set;
  extended.push_back(element);
  return IsIndependent(extended);
}

std::vector<int> MaximalIndependentSubset(const Matroid& matroid,
                                          const std::vector<int>& candidates,
                                          std::vector<int> seed) {
  for (int e : candidates) {
    if (std::find(seed.begin(), seed.end(), e) != seed.end()) continue;
    if (matroid.CanAdd(seed, e)) seed.push_back(e);
  }
  return seed;
}

namespace {

// Enumerates subsets of [0,n) as bitmasks; n must stay small.
bool IsIndependentMask(const Matroid& matroid, uint32_t mask) {
  std::vector<int> elements;
  for (int i = 0; i < matroid.GroundSize(); ++i) {
    if (mask & (1u << i)) elements.push_back(i);
  }
  return matroid.IsIndependent(elements);
}

}  // namespace

bool CheckMatroidAxioms(const Matroid& matroid) {
  const int n = matroid.GroundSize();
  FKC_CHECK_LE(n, 20) << "axiom check is exponential; keep ground sets small";
  const uint32_t limit = 1u << n;

  std::vector<bool> independent(limit);
  for (uint32_t mask = 0; mask < limit; ++mask) {
    independent[mask] = IsIndependentMask(matroid, mask);
  }
  if (!independent[0]) return false;  // empty set must be independent

  for (uint32_t mask = 0; mask < limit; ++mask) {
    if (!independent[mask]) continue;
    // Downward closure: removing any one element stays independent.
    for (int i = 0; i < n; ++i) {
      if ((mask & (1u << i)) && !independent[mask & ~(1u << i)]) return false;
    }
  }

  for (uint32_t p = 0; p < limit; ++p) {
    if (!independent[p]) continue;
    for (uint32_t q = 0; q < limit; ++q) {
      if (!independent[q]) continue;
      if (__builtin_popcount(p) <= __builtin_popcount(q)) continue;
      // Augmentation: some element of p \ q extends q.
      bool augmented = false;
      uint32_t diff = p & ~q;
      while (diff != 0) {
        const int bit = __builtin_ctz(diff);
        diff &= diff - 1;
        if (independent[q | (1u << bit)]) {
          augmented = true;
          break;
        }
      }
      if (!augmented) return false;
    }
  }
  return true;
}

}  // namespace fkc
