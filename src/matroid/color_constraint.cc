#include "matroid/color_constraint.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkc {

ColorConstraint::ColorConstraint(std::vector<int> caps)
    : caps_(std::move(caps)) {
  for (int cap : caps_) FKC_CHECK_GE(cap, 0);
  total_k_ = std::accumulate(caps_.begin(), caps_.end(), 0);
}

ColorConstraint ColorConstraint::Uniform(int ell, int cap_per_color) {
  FKC_CHECK_GT(ell, 0);
  FKC_CHECK_GE(cap_per_color, 0);
  return ColorConstraint(std::vector<int>(ell, cap_per_color));
}

ColorConstraint ColorConstraint::Proportional(const std::vector<Point>& points,
                                              int ell, int total_k) {
  FKC_CHECK_GT(ell, 0);
  FKC_CHECK_GT(total_k, 0);
  std::vector<int64_t> counts(ell, 0);
  for (const Point& p : points) {
    if (p.color >= 0 && p.color < ell) ++counts[p.color];
  }
  const int64_t total =
      std::accumulate(counts.begin(), counts.end(), int64_t{0});
  std::vector<int> caps(ell, 0);
  if (total == 0) {
    // No color information: spread evenly.
    for (int i = 0; i < ell; ++i) caps[i] = total_k / ell;
  } else {
    // Largest-remainder apportionment, with one guaranteed slot per
    // occurring color when the budget allows.
    std::vector<double> quota(ell);
    int assigned = 0;
    for (int i = 0; i < ell; ++i) {
      quota[i] = static_cast<double>(counts[i]) * total_k / total;
      caps[i] = static_cast<int>(quota[i]);
      assigned += caps[i];
    }
    std::vector<int> order(ell);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return quota[a] - static_cast<int>(quota[a]) >
             quota[b] - static_cast<int>(quota[b]);
    });
    for (int i = 0; assigned < total_k; i = (i + 1) % ell, ++assigned) {
      ++caps[order[i]];
    }
    for (int i = 0; i < ell; ++i) {
      if (counts[i] > 0 && caps[i] == 0) {
        // Steal a slot from the most-capped color.
        int donor = static_cast<int>(
            std::max_element(caps.begin(), caps.end()) - caps.begin());
        if (caps[donor] > 1) {
          --caps[donor];
          ++caps[i];
        }
      }
    }
  }
  return ColorConstraint(std::move(caps));
}

bool ColorConstraint::IsFeasible(const std::vector<Point>& points) const {
  std::vector<int> counts(caps_.size(), 0);
  for (const Point& p : points) {
    if (p.color < 0 || p.color >= ell()) return false;
    if (++counts[p.color] > caps_[p.color]) return false;
  }
  return true;
}

std::vector<int> ColorConstraint::CountColors(
    const std::vector<Point>& points) const {
  std::vector<int> counts(caps_.size(), 0);
  for (const Point& p : points) {
    if (p.color >= 0 && p.color < ell()) ++counts[p.color];
  }
  return counts;
}

std::string ColorConstraint::ToString() const {
  std::string out = "caps[";
  for (size_t i = 0; i < caps_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", caps_[i]);
  }
  out += StrFormat("] k=%d", total_k_);
  return out;
}

}  // namespace fkc
