#include "matroid/transversal.h"

#include <numeric>

#include "matching/hopcroft_karp.h"

namespace fkc {

TransversalMatroid::TransversalMatroid(BipartiteGraph graph)
    : graph_(std::move(graph)) {}

bool TransversalMatroid::IsIndependent(const std::vector<int>& elements) const {
  // Restrict the graph to the chosen left vertices and check saturation.
  BipartiteGraph sub(static_cast<int>(elements.size()), graph_.right_size());
  for (size_t i = 0; i < elements.size(); ++i) {
    for (int r : graph_.Neighbors(elements[i])) {
      sub.AddEdge(static_cast<int>(i), r);
    }
  }
  return MaximumBipartiteMatching(sub).Saturates(
      static_cast<int>(elements.size()));
}

int TransversalMatroid::Rank() const {
  return MaximumBipartiteMatching(graph_).size;
}

}  // namespace fkc
