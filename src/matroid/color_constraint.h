// The fairness constraint of the paper: at most k_i centers of color i, for
// each of the ell colors. This is the single source of truth for feasibility
// checks across sequential solvers, the sliding-window core, and the tests.
#ifndef FKC_MATROID_COLOR_CONSTRAINT_H_
#define FKC_MATROID_COLOR_CONSTRAINT_H_

#include <string>
#include <vector>

#include "metric/point.h"

namespace fkc {

/// Per-color cardinality caps k_1..k_ell with k = sum k_i.
class ColorConstraint {
 public:
  ColorConstraint() = default;

  /// `caps[i]` is the maximum number of centers of color i. Caps must be
  /// non-negative; zero disables a color entirely.
  explicit ColorConstraint(std::vector<int> caps);

  /// Uniform caps: `ell` colors, each allowed `cap_per_color` centers.
  static ColorConstraint Uniform(int ell, int cap_per_color);

  /// Caps proportional to the color frequencies in `points`, normalized so
  /// that the total equals `total_k` (the paper uses total_k = 14 with caps
  /// proportional to the global color distribution). Every color that occurs
  /// receives at least one slot when total_k >= #occurring colors.
  static ColorConstraint Proportional(const std::vector<Point>& points,
                                      int ell, int total_k);

  int ell() const { return static_cast<int>(caps_.size()); }
  int cap(int color) const { return caps_[color]; }
  const std::vector<int>& caps() const { return caps_; }

  /// k = sum of caps — the rank of the induced partition matroid.
  int TotalK() const { return total_k_; }

  /// True when `points`, interpreted as a center set, respects every cap.
  /// Points with colors outside [0, ell) make the set infeasible.
  bool IsFeasible(const std::vector<Point>& points) const;

  /// Per-color counts of `points`; colors outside range are dropped.
  std::vector<int> CountColors(const std::vector<Point>& points) const;

  std::string ToString() const;

 private:
  std::vector<int> caps_;
  int total_k_ = 0;
};

}  // namespace fkc

#endif  // FKC_MATROID_COLOR_CONSTRAINT_H_
