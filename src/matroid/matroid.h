// Matroid independence oracles. The fair-center constraint is the partition
// matroid; the matroid-center baseline of Chen et al. [10] is defined for
// arbitrary matroids, so the oracle interface is kept general.
//
// Elements are integer indices into a caller-owned ground set.
#ifndef FKC_MATROID_MATROID_H_
#define FKC_MATROID_MATROID_H_

#include <string>
#include <vector>

namespace fkc {

/// Independence oracle over ground-set indices [0, GroundSize()).
class Matroid {
 public:
  virtual ~Matroid() = default;

  virtual int GroundSize() const = 0;

  /// True iff `elements` (distinct indices) form an independent set.
  virtual bool IsIndependent(const std::vector<int>& elements) const = 0;

  /// True iff `independent_set + element` is independent, given that
  /// `independent_set` already is. The default copies and re-checks;
  /// implementations override with O(1) incremental logic.
  virtual bool CanAdd(const std::vector<int>& independent_set,
                      int element) const;

  /// Rank of the full matroid (size of the largest independent set).
  virtual int Rank() const = 0;

  virtual std::string Name() const = 0;
};

/// Greedily extends `seed` (assumed independent) to a maximal independent
/// subset of `candidates` (scanned in order). Returns the extended set.
std::vector<int> MaximalIndependentSubset(const Matroid& matroid,
                                          const std::vector<int>& candidates,
                                          std::vector<int> seed = {});

/// Verifies the matroid axioms by exhaustive enumeration — O(2^n), tests
/// only. Checks: empty set independent, downward closure, and the
/// augmentation (exchange) property.
bool CheckMatroidAxioms(const Matroid& matroid);

}  // namespace fkc

#endif  // FKC_MATROID_MATROID_H_
