// The partition matroid realizing the fairness constraint: ground elements
// carry colors, and a set is independent iff it holds at most k_i elements of
// each color i.
#ifndef FKC_MATROID_PARTITION_MATROID_H_
#define FKC_MATROID_PARTITION_MATROID_H_

#include <vector>

#include "matroid/color_constraint.h"
#include "matroid/matroid.h"
#include "metric/point.h"

namespace fkc {

/// Partition matroid over elements 0..n-1 with per-element colors and
/// per-color caps.
class PartitionMatroid final : public Matroid {
 public:
  /// `element_colors[e]` is the color of ground element e; colors must lie in
  /// [0, constraint.ell()).
  PartitionMatroid(std::vector<int> element_colors, ColorConstraint constraint);

  /// Builds the matroid over the given points, using their `color` fields.
  static PartitionMatroid OverPoints(const std::vector<Point>& points,
                                     const ColorConstraint& constraint);

  int GroundSize() const override {
    return static_cast<int>(element_colors_.size());
  }
  bool IsIndependent(const std::vector<int>& elements) const override;
  bool CanAdd(const std::vector<int>& independent_set,
              int element) const override;
  int Rank() const override;
  std::string Name() const override { return "partition"; }

  int ColorOf(int element) const { return element_colors_[element]; }
  const ColorConstraint& constraint() const { return constraint_; }

 private:
  std::vector<int> element_colors_;
  ColorConstraint constraint_;
};

}  // namespace fkc

#endif  // FKC_MATROID_PARTITION_MATROID_H_
