// Hopcroft–Karp maximum bipartite matching, O(E sqrt(V)).
//
// This is the combinatorial engine behind the Jones et al. fair-center
// algorithm (heads matched to color slots) and the partition-matroid
// feasibility check of the Chen et al. matroid-center baseline.
#ifndef FKC_MATCHING_HOPCROFT_KARP_H_
#define FKC_MATCHING_HOPCROFT_KARP_H_

#include <vector>

#include "matching/bipartite_graph.h"

namespace fkc {

/// Result of a maximum-matching computation.
struct MatchingResult {
  /// match_left[l] = matched right vertex, or -1 if l is unmatched.
  std::vector<int> match_left;
  /// match_right[r] = matched left vertex, or -1 if r is unmatched.
  std::vector<int> match_right;
  /// Number of matched pairs.
  int size = 0;

  bool Saturates(int left_count) const { return size == left_count; }
};

/// Computes a maximum matching of `graph`.
MatchingResult MaximumBipartiteMatching(const BipartiteGraph& graph);

}  // namespace fkc

#endif  // FKC_MATCHING_HOPCROFT_KARP_H_
