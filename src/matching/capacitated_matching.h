// Capacitated bipartite matching: right-side vertices (colors) accept up to
// cap(i) matches. Used to assign cluster heads to color slots in both fair
// center solvers. Implemented by expanding each color into cap(i) slots and
// running Hopcroft–Karp — the total slot count is k, which is tiny.
#ifndef FKC_MATCHING_CAPACITATED_MATCHING_H_
#define FKC_MATCHING_CAPACITATED_MATCHING_H_

#include <vector>

#include "matching/bipartite_graph.h"
#include "matroid/color_constraint.h"

namespace fkc {

/// Result of a capacitated matching of heads to colors.
struct CapacitatedMatchingResult {
  /// assigned_color[h] = color matched to head h, or -1 if unmatched.
  std::vector<int> assigned_color;
  /// Number of matched heads.
  int size = 0;

  bool Saturates(int head_count) const { return size == head_count; }
};

/// Computes a maximum matching of heads to colors where head h may use color
/// c iff `allowed[h]` contains c, and color c is used at most
/// `constraint.cap(c)` times.
CapacitatedMatchingResult MaximumCapacitatedMatching(
    const std::vector<std::vector<int>>& allowed,
    const ColorConstraint& constraint);

}  // namespace fkc

#endif  // FKC_MATCHING_CAPACITATED_MATCHING_H_
