#include "matching/bipartite_graph.h"

#include "common/logging.h"

namespace fkc {

BipartiteGraph::BipartiteGraph(int left_size, int right_size)
    : adjacency_(left_size), right_size_(right_size) {
  FKC_CHECK_GE(left_size, 0);
  FKC_CHECK_GE(right_size, 0);
}

void BipartiteGraph::AddEdge(int left, int right) {
  FKC_CHECK_GE(left, 0);
  FKC_CHECK_LT(left, left_size());
  FKC_CHECK_GE(right, 0);
  FKC_CHECK_LT(right, right_size_);
  adjacency_[left].push_back(right);
  ++edge_count_;
}

}  // namespace fkc
