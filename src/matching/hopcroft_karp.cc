#include "matching/hopcroft_karp.h"

#include <limits>
#include <queue>

namespace fkc {
namespace {

constexpr int kInf = std::numeric_limits<int>::max();

// Layered BFS from free left vertices; returns true if an augmenting path
// exists. dist[l] is the BFS layer of left vertex l.
bool Bfs(const BipartiteGraph& graph, const std::vector<int>& match_left,
         const std::vector<int>& match_right, std::vector<int>* dist) {
  std::queue<int> frontier;
  for (int l = 0; l < graph.left_size(); ++l) {
    if (match_left[l] == -1) {
      (*dist)[l] = 0;
      frontier.push(l);
    } else {
      (*dist)[l] = kInf;
    }
  }
  bool found_augmenting = false;
  while (!frontier.empty()) {
    const int l = frontier.front();
    frontier.pop();
    for (int r : graph.Neighbors(l)) {
      const int next = match_right[r];
      if (next == -1) {
        found_augmenting = true;
      } else if ((*dist)[next] == kInf) {
        (*dist)[next] = (*dist)[l] + 1;
        frontier.push(next);
      }
    }
  }
  return found_augmenting;
}

// DFS along layered edges, flipping matched/unmatched status on success.
bool Dfs(const BipartiteGraph& graph, int l, std::vector<int>* match_left,
         std::vector<int>* match_right, std::vector<int>* dist) {
  for (int r : graph.Neighbors(l)) {
    const int next = (*match_right)[r];
    if (next == -1 ||
        ((*dist)[next] == (*dist)[l] + 1 &&
         Dfs(graph, next, match_left, match_right, dist))) {
      (*match_left)[l] = r;
      (*match_right)[r] = l;
      return true;
    }
  }
  (*dist)[l] = kInf;  // dead end: prune this vertex for the current phase
  return false;
}

}  // namespace

MatchingResult MaximumBipartiteMatching(const BipartiteGraph& graph) {
  MatchingResult result;
  result.match_left.assign(graph.left_size(), -1);
  result.match_right.assign(graph.right_size(), -1);

  std::vector<int> dist(graph.left_size(), kInf);
  while (Bfs(graph, result.match_left, result.match_right, &dist)) {
    for (int l = 0; l < graph.left_size(); ++l) {
      if (result.match_left[l] == -1 &&
          Dfs(graph, l, &result.match_left, &result.match_right, &dist)) {
        ++result.size;
      }
    }
  }
  return result;
}

}  // namespace fkc
