// Bipartite graph representation shared by the matching algorithms.
#ifndef FKC_MATCHING_BIPARTITE_GRAPH_H_
#define FKC_MATCHING_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <vector>

namespace fkc {

/// A bipartite graph with `left_size` left vertices and `right_size` right
/// vertices, stored as left-side adjacency lists.
class BipartiteGraph {
 public:
  BipartiteGraph(int left_size, int right_size);

  /// Adds an edge (duplicate edges are allowed and harmless for matching).
  void AddEdge(int left, int right);

  int left_size() const { return static_cast<int>(adjacency_.size()); }
  int right_size() const { return right_size_; }
  int64_t edge_count() const { return edge_count_; }

  const std::vector<int>& Neighbors(int left) const {
    return adjacency_[left];
  }

 private:
  std::vector<std::vector<int>> adjacency_;
  int right_size_;
  int64_t edge_count_ = 0;
};

}  // namespace fkc

#endif  // FKC_MATCHING_BIPARTITE_GRAPH_H_
