#include "matching/capacitated_matching.h"

#include "common/logging.h"
#include "matching/hopcroft_karp.h"

namespace fkc {

CapacitatedMatchingResult MaximumCapacitatedMatching(
    const std::vector<std::vector<int>>& allowed,
    const ColorConstraint& constraint) {
  const int heads = static_cast<int>(allowed.size());
  const int ell = constraint.ell();

  // Expand color i into cap(i) identical slots.
  std::vector<int> slot_offset(ell + 1, 0);
  for (int i = 0; i < ell; ++i) {
    slot_offset[i + 1] = slot_offset[i] + constraint.cap(i);
  }
  const int total_slots = slot_offset[ell];

  BipartiteGraph graph(heads, total_slots);
  for (int h = 0; h < heads; ++h) {
    for (int color : allowed[h]) {
      FKC_CHECK_GE(color, 0);
      FKC_CHECK_LT(color, ell);
      for (int s = slot_offset[color]; s < slot_offset[color + 1]; ++s) {
        graph.AddEdge(h, s);
      }
    }
  }

  const MatchingResult matching = MaximumBipartiteMatching(graph);

  CapacitatedMatchingResult result;
  result.assigned_color.assign(heads, -1);
  result.size = matching.size;
  for (int h = 0; h < heads; ++h) {
    const int slot = matching.match_left[h];
    if (slot == -1) continue;
    // Binary-search-free slot->color lookup: linear over ell (small).
    for (int i = 0; i < ell; ++i) {
      if (slot >= slot_offset[i] && slot < slot_offset[i + 1]) {
        result.assigned_color[h] = i;
        break;
      }
    }
  }
  return result;
}

}  // namespace fkc
