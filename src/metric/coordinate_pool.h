// Structure-of-arrays coordinate storage for the distance hot path.
//
// The streaming update loop scans one arriving point against a stored
// attractor set. With points stored as individual heap vectors (AoS), that
// scan chases one pointer per pair; the SIMD kernels in simd_kernels.h
// instead want the j-th coordinate of *every* stored point contiguous in
// memory. A CoordinatePool provides exactly that: one dim-major buffer
// where row d holds coordinate d of all stored points, padded to a SIMD
// lane multiple so kernels may always load full vectors.
//
// Layout:   Row(d)[i] == coordinate d of the point at dense position i,
//           rows are stride() doubles apart, stride() % kLaneAlign == 0,
//           and Row(d)[size()..stride()) is zeroed (safe over-read).
//
// Identity: Append returns a stable slot id that survives compaction; the
// dense position of a slot shifts down as earlier slots are removed
// (order-preserving compaction), mirroring vector::erase on the owner's
// side so dense position i always tracks the owner's element i.
#ifndef FKC_METRIC_COORDINATE_POOL_H_
#define FKC_METRIC_COORDINATE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metric/point.h"

namespace fkc {

class CoordinatePool {
 public:
  /// Kernels load this many doubles per vector (AVX-512 width); stride and
  /// padding are aligned to it so every narrower kernel is covered too.
  static constexpr size_t kLaneAlign = 8;
  static constexpr uint32_t kInvalidSlot = UINT32_MAX;

  /// An empty pool of dimension 0; ResetDim before the first Append.
  CoordinatePool() = default;
  explicit CoordinatePool(size_t dim) : dim_(dim) {}

  /// Drops all points and re-dimensions the pool.
  void ResetDim(size_t dim);

  /// Stores `coords` (dim() doubles) at dense position size(); returns the
  /// stable slot id. Amortized O(dim): one strided write per row, doubling
  /// growth. Ids of removed slots may be reused.
  uint32_t Append(const double* coords);
  uint32_t Append(const Point& p);

  /// Removes one slot, shifting later points down one dense position
  /// (order-preserving). O(dim * tail).
  void Remove(uint32_t slot);

  /// Removes every dense position i with mask[i] != 0 in one compaction
  /// pass per row (order-preserving). mask.size() must equal size().
  void RemoveMasked(const std::vector<unsigned char>& dense_mask);

  void Clear();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t dim() const { return dim_; }
  /// Distance between consecutive rows, a multiple of kLaneAlign (0 while
  /// nothing was ever appended).
  size_t stride() const { return stride_; }

  /// Row d: coordinate d of points at dense positions [0, size()); entries
  /// [size(), stride()) are zero so kernels may over-read to a lane
  /// boundary.
  const double* Row(size_t d) const { return data_.data() + d * stride_; }
  double At(size_t dense_pos, size_t d) const { return Row(d)[dense_pos]; }

  uint32_t SlotAt(size_t dense_pos) const { return dense_to_slot_[dense_pos]; }
  /// Dense position of a live slot id.
  size_t DensePos(uint32_t slot) const;
  bool Contains(uint32_t slot) const;

  /// Fails (FKC_CHECK) unless the id maps, padding, and zero-fill
  /// invariants all hold. Test / debug hook.
  void CheckInvariants() const;

 private:
  void EnsureCapacity(size_t min_points);

  size_t dim_ = 0;
  size_t size_ = 0;      // live points
  size_t capacity_ = 0;  // points the buffer can hold == stride_
  size_t stride_ = 0;
  std::vector<double> data_;  // dim_ rows of stride_ doubles, zero padded

  std::vector<uint32_t> dense_to_slot_;  // size_ entries
  std::vector<uint32_t> slot_to_dense_;  // kInvalidSlot == free
  std::vector<uint32_t> free_slots_;     // reusable ids
};

}  // namespace fkc

#endif  // FKC_METRIC_COORDINATE_POOL_H_
