// A decorating metric that counts distance evaluations. Distance
// computations dominate every algorithm in this library, so the counter is
// the machine-independent complexity measure used by the Theorem-3 tests
// (update/query cost independent of the window size) and available to
// benchmarks for ops-based reporting.
#ifndef FKC_METRIC_COUNTING_METRIC_H_
#define FKC_METRIC_COUNTING_METRIC_H_

#include <cstdint>

#include "metric/metric.h"

namespace fkc {

/// Wraps another metric and counts calls. Not thread-safe (the library is
/// single-threaded by design; the streaming model is sequential).
class CountingMetric final : public Metric {
 public:
  /// `inner` must outlive this wrapper.
  explicit CountingMetric(const Metric* inner) : inner_(inner) {}

  double Distance(const Point& a, const Point& b) const override {
    ++count_;
    return inner_->Distance(a, b);
  }

  std::string Name() const override {
    return "counting(" + inner_->Name() + ")";
  }

  /// Number of Distance calls since construction or the last Reset.
  int64_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  const Metric* inner_;
  mutable int64_t count_ = 0;
};

}  // namespace fkc

#endif  // FKC_METRIC_COUNTING_METRIC_H_
