// A decorating metric that counts distance evaluations. Distance
// computations dominate every algorithm in this library, so the counter is
// the machine-independent complexity measure used by the Theorem-3 tests
// (update/query cost independent of the window size) and available to
// benchmarks for ops-based reporting.
#ifndef FKC_METRIC_COUNTING_METRIC_H_
#define FKC_METRIC_COUNTING_METRIC_H_

#include <atomic>
#include <cstdint>

#include "metric/coordinate_pool.h"
#include "metric/metric.h"

namespace fkc {

/// Wraps another metric and counts calls. The counter is atomic (relaxed)
/// so counts stay exact under the parallel ladder engine, where independent
/// guess structures evaluate distances concurrently.
class CountingMetric final : public Metric {
 public:
  /// `inner` must outlive this wrapper.
  explicit CountingMetric(const Metric* inner) : inner_(inner) {}

  double Distance(const Point& a, const Point& b) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return inner_->Distance(a, b);
  }

  /// Counts one evaluation per pair — exactly what the scalar loop would
  /// count — while letting the inner metric keep its batched kernel.
  void DistanceMany(const Point& p, const Point* const* points, size_t count,
                    double* out) const override {
    count_.fetch_add(static_cast<int64_t>(count), std::memory_order_relaxed);
    inner_->DistanceMany(p, points, count, out);
  }

  /// SoA scans count exactly like per-pair calls: one increment per stored
  /// point, whatever kernel width the inner metric dispatches to. This keeps
  /// the Theorem-3 complexity tests and the CI perf counters identical
  /// across scalar, AVX2, and AVX-512 runs.
  void DistanceSoA(const Point& p, const CoordinatePool& pool,
                   double* out) const override {
    count_.fetch_add(static_cast<int64_t>(pool.size()),
                     std::memory_order_relaxed);
    inner_->DistanceSoA(p, pool, out);
  }

  std::string Name() const override {
    return "counting(" + inner_->Name() + ")";
  }

  /// Number of Distance calls since construction or the last Reset.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  const Metric* inner_;
  mutable std::atomic<int64_t> count_{0};
};

}  // namespace fkc

#endif  // FKC_METRIC_COUNTING_METRIC_H_
