#include "metric/metric.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fkc {

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  FKC_CHECK_EQ(a.coords.size(), b.coords.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.coords.size(); ++i) {
    const double diff = a.coords[i] - b.coords[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  FKC_CHECK_EQ(a.coords.size(), b.coords.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.coords.size(); ++i) {
    sum += std::fabs(a.coords[i] - b.coords[i]);
  }
  return sum;
}

double ChebyshevMetric::Distance(const Point& a, const Point& b) const {
  FKC_CHECK_EQ(a.coords.size(), b.coords.size());
  double best = 0.0;
  for (size_t i = 0; i < a.coords.size(); ++i) {
    const double diff = std::fabs(a.coords[i] - b.coords[i]);
    if (diff > best) best = diff;
  }
  return best;
}

double DistanceToSet(const Metric& metric, const Point& p,
                     const std::vector<Point>& pool) {
  double best = std::numeric_limits<double>::infinity();
  for (const Point& q : pool) {
    const double d = metric.Distance(p, q);
    if (d < best) best = d;
  }
  return best;
}

const Metric& DefaultMetric() {
  static const EuclideanMetric* metric = new EuclideanMetric();
  return *metric;
}

}  // namespace fkc
