#include "metric/metric.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "metric/coordinate_pool.h"
#include "metric/simd_kernels.h"

namespace fkc {

void Metric::DistanceMany(const Point& p, const Point* const* points,
                          size_t count, double* out) const {
  for (size_t i = 0; i < count; ++i) out[i] = Distance(p, *points[i]);
}

void Metric::DistanceSoA(const Point& p, const CoordinatePool& pool,
                         double* out) const {
  // Generic fallback: gather each dim-major column back into a point and go
  // through the virtual Distance. One scratch point reused across columns.
  if (pool.empty()) return;  // a never-filled pool has no dimension yet
  FKC_CHECK_EQ(p.coords.size(), pool.dim());
  Point scratch;
  scratch.coords.resize(pool.dim());
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t d = 0; d < pool.dim(); ++d) {
      scratch.coords[d] = pool.At(i, d);
    }
    out[i] = Distance(p, scratch);
  }
}

namespace {

/// Shared prologue of the built-in SoA overrides: dimension check plus the
/// raw kernel call (row 0 is the base of the dim-major buffer; rows are
/// stride() apart and zero-padded to a lane multiple, so kernels may always
/// load full vectors).
inline void RunSoAKernel(simd::DistanceKernel kernel, const Point& p,
                         const CoordinatePool& pool, double* out) {
  if (pool.empty()) return;  // a never-filled pool has no dimension yet
  FKC_CHECK_EQ(p.coords.size(), pool.dim());
  kernel(p.coords.data(), pool.Row(0), pool.stride(), pool.dim(), pool.size(),
         out);
}

}  // namespace

void EuclideanMetric::DistanceSoA(const Point& p, const CoordinatePool& pool,
                                  double* out) const {
  RunSoAKernel(simd::ActiveKernels().euclidean, p, pool, out);
}

void ManhattanMetric::DistanceSoA(const Point& p, const CoordinatePool& pool,
                                  double* out) const {
  RunSoAKernel(simd::ActiveKernels().manhattan, p, pool, out);
}

void ChebyshevMetric::DistanceSoA(const Point& p, const CoordinatePool& pool,
                                  double* out) const {
  RunSoAKernel(simd::ActiveKernels().chebyshev, p, pool, out);
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  FKC_CHECK_EQ(a.coords.size(), b.coords.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.coords.size(); ++i) {
    const double diff = a.coords[i] - b.coords[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  FKC_CHECK_EQ(a.coords.size(), b.coords.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.coords.size(); ++i) {
    sum += std::fabs(a.coords[i] - b.coords[i]);
  }
  return sum;
}

double ChebyshevMetric::Distance(const Point& a, const Point& b) const {
  FKC_CHECK_EQ(a.coords.size(), b.coords.size());
  double best = 0.0;
  for (size_t i = 0; i < a.coords.size(); ++i) {
    const double diff = std::fabs(a.coords[i] - b.coords[i]);
    if (diff > best) best = diff;
  }
  return best;
}

void EuclideanMetric::DistanceMany(const Point& p, const Point* const* points,
                                   size_t count, double* out) const {
  const size_t dim = p.coords.size();
  const double* a = p.coords.data();
  size_t i = 0;
  // Two pairs per iteration: independent accumulators break the dependency
  // chain without reordering any pair's own summation.
  for (; i + 2 <= count; i += 2) {
    const Point& q0 = *points[i];
    const Point& q1 = *points[i + 1];
    FKC_CHECK_EQ(dim, q0.coords.size());
    FKC_CHECK_EQ(dim, q1.coords.size());
    const double* b0 = q0.coords.data();
    const double* b1 = q1.coords.data();
    double s0 = 0.0, s1 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff0 = a[d] - b0[d];
      s0 += diff0 * diff0;
      const double diff1 = a[d] - b1[d];
      s1 += diff1 * diff1;
    }
    out[i] = std::sqrt(s0);
    out[i + 1] = std::sqrt(s1);
  }
  for (; i < count; ++i) {
    const Point& q = *points[i];
    FKC_CHECK_EQ(dim, q.coords.size());
    const double* b = q.coords.data();
    double sum = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = a[d] - b[d];
      sum += diff * diff;
    }
    out[i] = std::sqrt(sum);
  }
}

void ManhattanMetric::DistanceMany(const Point& p, const Point* const* points,
                                   size_t count, double* out) const {
  const size_t dim = p.coords.size();
  const double* a = p.coords.data();
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const Point& q0 = *points[i];
    const Point& q1 = *points[i + 1];
    FKC_CHECK_EQ(dim, q0.coords.size());
    FKC_CHECK_EQ(dim, q1.coords.size());
    const double* b0 = q0.coords.data();
    const double* b1 = q1.coords.data();
    double s0 = 0.0, s1 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      s0 += std::fabs(a[d] - b0[d]);
      s1 += std::fabs(a[d] - b1[d]);
    }
    out[i] = s0;
    out[i + 1] = s1;
  }
  for (; i < count; ++i) {
    const Point& q = *points[i];
    FKC_CHECK_EQ(dim, q.coords.size());
    const double* b = q.coords.data();
    double sum = 0.0;
    for (size_t d = 0; d < dim; ++d) sum += std::fabs(a[d] - b[d]);
    out[i] = sum;
  }
}

void ChebyshevMetric::DistanceMany(const Point& p, const Point* const* points,
                                   size_t count, double* out) const {
  const size_t dim = p.coords.size();
  const double* a = p.coords.data();
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const Point& q0 = *points[i];
    const Point& q1 = *points[i + 1];
    FKC_CHECK_EQ(dim, q0.coords.size());
    FKC_CHECK_EQ(dim, q1.coords.size());
    const double* b0 = q0.coords.data();
    const double* b1 = q1.coords.data();
    double m0 = 0.0, m1 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff0 = std::fabs(a[d] - b0[d]);
      if (diff0 > m0) m0 = diff0;
      const double diff1 = std::fabs(a[d] - b1[d]);
      if (diff1 > m1) m1 = diff1;
    }
    out[i] = m0;
    out[i + 1] = m1;
  }
  for (; i < count; ++i) {
    const Point& q = *points[i];
    FKC_CHECK_EQ(dim, q.coords.size());
    const double* b = q.coords.data();
    double best = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = std::fabs(a[d] - b[d]);
      if (diff > best) best = diff;
    }
    out[i] = best;
  }
}

double DistanceToSet(const Metric& metric, const Point& p,
                     const std::vector<Point>& pool) {
  double best = std::numeric_limits<double>::infinity();
  for (const Point& q : pool) {
    const double d = metric.Distance(p, q);
    if (d < best) best = d;
  }
  return best;
}

const Metric& DefaultMetric() {
  static const EuclideanMetric* metric = new EuclideanMetric();
  return *metric;
}

}  // namespace fkc
