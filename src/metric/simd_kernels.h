// Vectorized distance kernels over the dim-major CoordinatePool layout,
// with runtime CPU dispatch.
//
// Kernel contract — bit-identical lane-per-pair accumulation:
//   out[i] = metric(query, column i of `data`) for i in [0, count), where
//   `data` is a dim-major matrix (row d starts at data + d * stride) and
//   every row is readable up to RoundUpToLanes(count) doubles (the
//   CoordinatePool guarantees this via zeroed lane padding).
//
// Each SIMD lane owns exactly one (query, point) pair and accumulates that
// pair's terms over dimensions in ascending order — the same per-pair
// summation order as the scalar loop. Vector width therefore changes only
// *which pairs run together*, never any pair's rounding, so scalar, AVX2,
// and AVX-512 kernels return bit-identical doubles (verified by
// tests/simd_kernel_test.cc). The kernel translation units are compiled
// with FP contraction off: a fused multiply-add would skip the
// intermediate rounding of the scalar `sum += diff * diff`.
//
// One binary runs everywhere: only the AVX2/AVX-512 translation units are
// built with -mavx2/-mavx512f, and ActiveKernels() selects the widest
// variant the running CPU reports (cpuid via __builtin_cpu_supports),
// falling back to the always-present scalar set on non-x86 builds.
#ifndef FKC_METRIC_SIMD_KERNELS_H_
#define FKC_METRIC_SIMD_KERNELS_H_

#include <cstddef>
#include <vector>

#include "metric/coordinate_pool.h"

namespace fkc {
namespace simd {

/// out[i] = distance(query, data column i); see the file comment for the
/// layout and padding contract.
using DistanceKernel = void (*)(const double* query, const double* data,
                                size_t stride, size_t dim, size_t count,
                                double* out);

/// One kernel per built-in metric, all of one vector width.
struct KernelSet {
  const char* name;  ///< "scalar", "avx2", "avx512"
  size_t lanes;      ///< pairs processed per vector
  DistanceKernel euclidean;
  DistanceKernel manhattan;
  DistanceKernel chebyshev;
};

/// Rows must be readable (not meaningful) up to this many doubles.
constexpr size_t RoundUpToLanes(size_t count) {
  return (count + CoordinatePool::kLaneAlign - 1) / CoordinatePool::kLaneAlign *
         CoordinatePool::kLaneAlign;
}

/// The portable reference kernels; always available.
const KernelSet& ScalarKernels();

/// Every kernel set compiled into this binary, scalar first. Sets beyond
/// what the running CPU supports are included (for enumeration) — check
/// CpuSupports before calling one.
std::vector<const KernelSet*> CompiledKernelSets();

/// True when the running CPU can execute `set`.
bool CpuSupports(const KernelSet& set);

/// The widest compiled set the running CPU supports. The FKC_SIMD
/// environment variable ("scalar", "avx2", "avx512") caps or forces the
/// choice (unsupported requests fall back to the widest supported set);
/// read once at first call.
const KernelSet& ActiveKernels();

}  // namespace simd
}  // namespace fkc

#endif  // FKC_METRIC_SIMD_KERNELS_H_
