// Doubling-dimension estimation. The paper's space bound depends on the
// doubling dimension D of the current window; this estimator lets tests and
// experiments (Figures 4 and 5) verify that costs track the *intrinsic*
// dimension of the data rather than the ambient coordinate count.
#ifndef FKC_METRIC_DOUBLING_H_
#define FKC_METRIC_DOUBLING_H_

#include <vector>

#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {

/// Greedily extracts an r-net of `points`: a subset N with pairwise distances
/// > r such that every point is within r of N.
std::vector<Point> GreedyNet(const Metric& metric,
                             const std::vector<Point>& points, double r);

/// Estimates the doubling dimension of `points`.
///
/// For a ladder of scales r, compares the size of the (r/2)-net restricted to
/// balls of radius r around net points: the doubling dimension is
/// log2(max ball-local growth). This is an upper-bound-flavored estimate —
/// exact doubling dimension is NP-hard to compute — but tracks intrinsic
/// dimensionality well on the synthetic datasets used in the paper.
///
/// `scales` controls how many dyadic scales between the diameter and the
/// minimum distance are probed.
double EstimateDoublingDimension(const Metric& metric,
                                 const std::vector<Point>& points,
                                 int scales = 6);

}  // namespace fkc

#endif  // FKC_METRIC_DOUBLING_H_
