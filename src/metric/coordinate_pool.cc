#include "metric/coordinate_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace fkc {

void CoordinatePool::ResetDim(size_t dim) {
  dim_ = dim;
  Clear();
  data_.clear();
  data_.shrink_to_fit();
  capacity_ = 0;
  stride_ = 0;
}

void CoordinatePool::Clear() {
  size_ = 0;
  std::fill(data_.begin(), data_.end(), 0.0);
  dense_to_slot_.clear();
  slot_to_dense_.clear();
  free_slots_.clear();
}

void CoordinatePool::EnsureCapacity(size_t min_points) {
  if (min_points <= capacity_) return;
  size_t new_capacity = capacity_ == 0 ? kLaneAlign : capacity_;
  while (new_capacity < min_points) new_capacity *= 2;
  // Round to the lane multiple so stride keeps every row over-readable.
  new_capacity = (new_capacity + kLaneAlign - 1) / kLaneAlign * kLaneAlign;
  // Keep the row stride off 4 KiB multiples: with a 4 KiB-aliased stride
  // every row's element i lands in the same L1 set, and the dim-outer
  // kernel walk (one load per row at fixed i) thrashes that set at high
  // dimension. One extra lane of padding breaks the alignment.
  constexpr size_t kPageDoubles = 4096 / sizeof(double);
  if (new_capacity % kPageDoubles == 0) new_capacity += kLaneAlign;
  std::vector<double> grown(dim_ * new_capacity, 0.0);
  if (size_ > 0) {  // first growth copies from an empty (null-data) buffer
    for (size_t d = 0; d < dim_; ++d) {
      std::memcpy(grown.data() + d * new_capacity, data_.data() + d * stride_,
                  size_ * sizeof(double));
    }
  }
  data_ = std::move(grown);
  capacity_ = new_capacity;
  stride_ = new_capacity;
}

uint32_t CoordinatePool::Append(const double* coords) {
  FKC_CHECK_GT(dim_, 0u) << "ResetDim before Append";
  EnsureCapacity(size_ + 1);
  for (size_t d = 0; d < dim_; ++d) {
    data_[d * stride_ + size_] = coords[d];
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slot_to_dense_.size());
    slot_to_dense_.push_back(kInvalidSlot);
  }
  slot_to_dense_[slot] = static_cast<uint32_t>(size_);
  dense_to_slot_.push_back(slot);
  ++size_;
  return slot;
}

uint32_t CoordinatePool::Append(const Point& p) {
  FKC_CHECK_EQ(p.coords.size(), dim_);
  return Append(p.coords.data());
}

size_t CoordinatePool::DensePos(uint32_t slot) const {
  FKC_CHECK(Contains(slot)) << "dead or unknown slot " << slot;
  return slot_to_dense_[slot];
}

bool CoordinatePool::Contains(uint32_t slot) const {
  return slot < slot_to_dense_.size() && slot_to_dense_[slot] != kInvalidSlot;
}

void CoordinatePool::Remove(uint32_t slot) {
  const size_t pos = DensePos(slot);
  const size_t tail = size_ - pos - 1;
  for (size_t d = 0; d < dim_; ++d) {
    double* row = data_.data() + d * stride_;
    std::memmove(row + pos, row + pos + 1, tail * sizeof(double));
    row[size_ - 1] = 0.0;  // keep the padding zeroed
  }
  slot_to_dense_[slot] = kInvalidSlot;
  free_slots_.push_back(slot);
  dense_to_slot_.erase(dense_to_slot_.begin() + static_cast<long>(pos));
  for (size_t i = pos; i < dense_to_slot_.size(); ++i) {
    slot_to_dense_[dense_to_slot_[i]] = static_cast<uint32_t>(i);
  }
  --size_;
}

void CoordinatePool::RemoveMasked(
    const std::vector<unsigned char>& dense_mask) {
  FKC_CHECK_EQ(dense_mask.size(), size_);
  size_t write = 0;
  for (size_t read = 0; read < size_; ++read) {
    if (dense_mask[read]) {
      const uint32_t slot = dense_to_slot_[read];
      slot_to_dense_[slot] = kInvalidSlot;
      free_slots_.push_back(slot);
      continue;
    }
    if (write != read) {
      for (size_t d = 0; d < dim_; ++d) {
        data_[d * stride_ + write] = data_[d * stride_ + read];
      }
      dense_to_slot_[write] = dense_to_slot_[read];
      slot_to_dense_[dense_to_slot_[write]] = static_cast<uint32_t>(write);
    }
    ++write;
  }
  for (size_t d = 0; d < dim_; ++d) {
    double* row = data_.data() + d * stride_;
    std::fill(row + write, row + size_, 0.0);
  }
  dense_to_slot_.resize(write);
  size_ = write;
}

void CoordinatePool::CheckInvariants() const {
  FKC_CHECK_EQ(dense_to_slot_.size(), size_);
  FKC_CHECK_EQ(stride_ % kLaneAlign, 0u);
  FKC_CHECK_GE(capacity_, size_);
  size_t live = 0;
  for (size_t slot = 0; slot < slot_to_dense_.size(); ++slot) {
    const uint32_t pos = slot_to_dense_[slot];
    if (pos == kInvalidSlot) continue;
    ++live;
    FKC_CHECK_LT(pos, size_);
    FKC_CHECK_EQ(dense_to_slot_[pos], slot);
  }
  FKC_CHECK_EQ(live, size_);
  FKC_CHECK_EQ(free_slots_.size() + live, slot_to_dense_.size());
  for (size_t d = 0; d < dim_; ++d) {
    const double* row = Row(d);
    for (size_t i = size_; i < stride_; ++i) {
      FKC_CHECK_EQ(row[i], 0.0) << "padding must stay zeroed";
    }
  }
}

}  // namespace fkc
