// AVX-512 kernels: 8 pairs per 512-bit vector, lane-per-pair. Compiled with
// -mavx512f -ffp-contract=off (see CMakeLists.txt); never executed unless
// ActiveKernels() saw cpuid report AVX-512F. No FMA anywhere — the scalar
// path rounds after the multiply and after the add, and these kernels must
// match it bit for bit.
#include "metric/simd_kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace fkc {
namespace simd {
namespace {

constexpr size_t kLanes = 8;

// Mask with the low `rem` (1..7) lanes live, for the final partial store.
inline __mmask8 TailMask(size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

// Bitwise |v| (clears the sign bit; exact for subnormals). GCC's
// _mm512_abs_pd routes through an undefined-value intrinsic that trips
// -Wmaybe-uninitialized, so spell out the and-not.
inline __m512d Abs(__m512d v) {
  const __m512i sign = _mm512_set1_epi64(INT64_MIN);
  return _mm512_castsi512_pd(
      _mm512_andnot_si512(sign, _mm512_castpd_si512(v)));
}

void EuclideanAvx512(const double* query, const double* data, size_t stride,
                     size_t dim, size_t count, double* out) {
  // Two vectors (16 pairs) per dim pass: amortizes the query broadcast and
  // keeps two independent accumulation chains in flight, which matters at
  // high dim where a single add chain leaves the FPU idle. Each lane still
  // owns exactly one pair with ascending-dim accumulation — unrolling
  // changes which pairs run together, never any pair's rounding.
  size_t i = 0;
  for (; i + 2 * kLanes <= count; i += 2 * kLanes) {
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(query[d]);
      const double* row = data + d * stride + i;
      const __m512d diff0 = _mm512_sub_pd(qd, _mm512_loadu_pd(row));
      const __m512d diff1 = _mm512_sub_pd(qd, _mm512_loadu_pd(row + kLanes));
      acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(diff0, diff0));
      acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(diff1, diff1));
    }
    _mm512_storeu_pd(out + i, _mm512_sqrt_pd(acc0));
    _mm512_storeu_pd(out + i + kLanes, _mm512_sqrt_pd(acc1));
  }
  for (; i < count; i += kLanes) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d pts = _mm512_loadu_pd(data + d * stride + i);
      const __m512d diff = _mm512_sub_pd(qd, pts);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    const __m512d result = _mm512_sqrt_pd(acc);
    if (i + kLanes <= count) {
      _mm512_storeu_pd(out + i, result);
    } else {
      _mm512_mask_storeu_pd(out + i, TailMask(count - i), result);
    }
  }
}

void ManhattanAvx512(const double* query, const double* data, size_t stride,
                     size_t dim, size_t count, double* out) {
  size_t i = 0;
  for (; i + 2 * kLanes <= count; i += 2 * kLanes) {
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(query[d]);
      const double* row = data + d * stride + i;
      acc0 = _mm512_add_pd(
          acc0, Abs(_mm512_sub_pd(qd, _mm512_loadu_pd(row))));
      acc1 = _mm512_add_pd(
          acc1,
          Abs(_mm512_sub_pd(qd, _mm512_loadu_pd(row + kLanes))));
    }
    _mm512_storeu_pd(out + i, acc0);
    _mm512_storeu_pd(out + i + kLanes, acc1);
  }
  for (; i < count; i += kLanes) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d pts = _mm512_loadu_pd(data + d * stride + i);
      acc = _mm512_add_pd(acc, Abs(_mm512_sub_pd(qd, pts)));
    }
    if (i + kLanes <= count) {
      _mm512_storeu_pd(out + i, acc);
    } else {
      _mm512_mask_storeu_pd(out + i, TailMask(count - i), acc);
    }
  }
}

void ChebyshevAvx512(const double* query, const double* data, size_t stride,
                     size_t dim, size_t count, double* out) {
  size_t i = 0;
  for (; i + 2 * kLanes <= count; i += 2 * kLanes) {
    __m512d best0 = _mm512_setzero_pd();
    __m512d best1 = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(query[d]);
      const double* row = data + d * stride + i;
      // max(diff, best): returns `best` when equal or unordered, matching
      // the scalar `if (diff > best) best = diff`.
      best0 = _mm512_max_pd(
          Abs(_mm512_sub_pd(qd, _mm512_loadu_pd(row))), best0);
      best1 = _mm512_max_pd(
          Abs(_mm512_sub_pd(qd, _mm512_loadu_pd(row + kLanes))),
          best1);
    }
    _mm512_storeu_pd(out + i, best0);
    _mm512_storeu_pd(out + i + kLanes, best1);
  }
  for (; i < count; i += kLanes) {
    __m512d best = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d pts = _mm512_loadu_pd(data + d * stride + i);
      const __m512d diff = Abs(_mm512_sub_pd(qd, pts));
      best = _mm512_max_pd(diff, best);
    }
    if (i + kLanes <= count) {
      _mm512_storeu_pd(out + i, best);
    } else {
      _mm512_mask_storeu_pd(out + i, TailMask(count - i), best);
    }
  }
}

const KernelSet kAvx512Set = {"avx512", kLanes, EuclideanAvx512,
                              ManhattanAvx512, ChebyshevAvx512};

}  // namespace

namespace internal {
const KernelSet& Avx512KernelSetImpl() { return kAvx512Set; }
}  // namespace internal

}  // namespace simd
}  // namespace fkc

#endif  // __AVX512F__
