// The point type shared by every subsystem: dense coordinates plus the color
// (fairness category) and streaming metadata (arrival time, unique id).
#ifndef FKC_METRIC_POINT_H_
#define FKC_METRIC_POINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fkc {

/// Dense coordinate vector. Double precision throughout: the guess ladder
/// spans up to ~6 decades of scale (PHONES has aspect ratio 6.4e5) and radius
/// comparisons at the small end must stay exact enough to pick guesses.
using Coordinates = std::vector<double>;

/// A colored metric point.
///
/// `color` is the fairness category index in [0, ell). `arrival` is the
/// logical time step at which the point entered the stream (-1 for points
/// never streamed, e.g. in purely sequential uses). `id` is unique per stream
/// and used for identity checks and memory accounting.
struct Point {
  Coordinates coords;
  int color = 0;
  int64_t arrival = -1;
  uint64_t id = 0;

  Point() = default;
  Point(Coordinates c, int col) : coords(std::move(c)), color(col) {}
  Point(Coordinates c, int col, int64_t t, uint64_t pid)
      : coords(std::move(c)), color(col), arrival(t), id(pid) {}

  size_t dimension() const { return coords.size(); }

  /// Debug representation: "(x0, x1, ...)#color@arrival".
  std::string ToString() const;
};

/// Identity (same stream slot), not geometric equality.
inline bool SamePoint(const Point& a, const Point& b) { return a.id == b.id; }

/// Number of remaining steps during which `p` belongs to the window of size
/// `window_size` at time `now`: TTL(p) = max(0, n - (now - t(p))).
inline int64_t TimeToLive(const Point& p, int64_t now, int64_t window_size) {
  int64_t ttl = window_size - (now - p.arrival);
  return ttl > 0 ? ttl : 0;
}

/// True when `p` still belongs to the window of size `window_size` at `now`.
inline bool IsActive(const Point& p, int64_t now, int64_t window_size) {
  return TimeToLive(p, now, window_size) > 0;
}

}  // namespace fkc

#endif  // FKC_METRIC_POINT_H_
