// Metric abstraction. The algorithms in this library work in arbitrary metric
// spaces; all geometry flows through this interface so swapping the distance
// swaps the space.
#ifndef FKC_METRIC_METRIC_H_
#define FKC_METRIC_METRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "metric/point.h"

namespace fkc {

class CoordinatePool;

/// Distance oracle over Points. Implementations must satisfy the metric
/// axioms (identity, symmetry, triangle inequality) — the approximation
/// guarantees of every algorithm in this library depend on them.
class Metric {
 public:
  virtual ~Metric() = default;

  /// d(a, b). Points of differing dimensionality are a caller bug.
  virtual double Distance(const Point& a, const Point& b) const = 0;

  /// Batched kernel for the streaming hot loop: out[i] = d(p, *points[i])
  /// for i in [0, count). The base implementation is the scalar virtual
  /// loop; concrete metrics override it with tight contiguous loops that pay
  /// the virtual dispatch once per batch instead of once per pair.
  ///
  /// Contract: every out[i] must be bit-identical to Distance(p, *points[i])
  /// — overrides may interleave pairs for instruction-level parallelism but
  /// must keep each pair's accumulation order unchanged, so that batched and
  /// scalar code paths produce exactly the same results.
  virtual void DistanceMany(const Point& p, const Point* const* points,
                            size_t count, double* out) const;

  /// Structure-of-arrays kernel for the streaming hot loop: out[i] = d(p,
  /// pool column i) for every dense position i in [0, pool.size()). The
  /// dim-major, lane-padded CoordinatePool layout lets the built-in metrics
  /// dispatch to the vectorized kernels in simd_kernels.h; the base
  /// implementation gathers each column and calls Distance, so custom
  /// metrics stay correct without opting in — PROVIDED the metric depends on
  /// coordinates only. The pool stores no color/arrival/id, so a Distance
  /// that consults those fields must override DistanceSoA itself (the
  /// streaming core routes all attractor scans through here).
  ///
  /// Contract: identical to DistanceMany — every out[i] must be bit-identical
  /// to Distance(p, column i). The SIMD kernels honor this by giving each
  /// vector lane exactly one pair and accumulating that pair's terms in
  /// ascending dimension order (see simd_kernels.h).
  virtual void DistanceSoA(const Point& p, const CoordinatePool& pool,
                           double* out) const;

  virtual std::string Name() const = 0;
};

/// Euclidean (L2) distance.
class EuclideanMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceMany(const Point& p, const Point* const* points, size_t count,
                    double* out) const override;
  void DistanceSoA(const Point& p, const CoordinatePool& pool,
                   double* out) const override;
  std::string Name() const override { return "euclidean"; }
};

/// Manhattan (L1) distance.
class ManhattanMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceMany(const Point& p, const Point* const* points, size_t count,
                    double* out) const override;
  void DistanceSoA(const Point& p, const CoordinatePool& pool,
                   double* out) const override;
  std::string Name() const override { return "manhattan"; }
};

/// Chebyshev (L-infinity) distance.
class ChebyshevMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceMany(const Point& p, const Point* const* points, size_t count,
                    double* out) const override;
  void DistanceSoA(const Point& p, const CoordinatePool& pool,
                   double* out) const override;
  std::string Name() const override { return "chebyshev"; }
};

/// Minimum distance from `p` to any point in `pool`; +inf when pool is empty.
double DistanceToSet(const Metric& metric, const Point& p,
                     const std::vector<Point>& pool);

/// The shared default metric (Euclidean), used when callers do not care.
const Metric& DefaultMetric();

}  // namespace fkc

#endif  // FKC_METRIC_METRIC_H_
