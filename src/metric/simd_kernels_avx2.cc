// AVX2 kernels: 4 pairs per 256-bit vector, lane-per-pair. Compiled with
// -mavx2 -ffp-contract=off (see CMakeLists.txt); never executed unless
// ActiveKernels() saw cpuid report AVX2. No FMA anywhere — the scalar path
// rounds after the multiply and after the add, and these kernels must
// match it bit for bit.
#include "metric/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace fkc {
namespace simd {
namespace {

constexpr size_t kLanes = 4;

// Lane mask for a tail of `rem` (1..3) live pairs.
inline __m256i TailMask(size_t rem) {
  alignas(32) long long mask[kLanes] = {0, 0, 0, 0};
  for (size_t i = 0; i < rem; ++i) mask[i] = -1;
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(mask));
}

inline __m256d Abs(__m256d v) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  return _mm256_andnot_pd(sign_mask, v);
}

void EuclideanAvx2(const double* query, const double* data, size_t stride,
                   size_t dim, size_t count, double* out) {
  for (size_t i = 0; i < count; i += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d pts = _mm256_loadu_pd(data + d * stride + i);
      const __m256d diff = _mm256_sub_pd(qd, pts);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    const __m256d result = _mm256_sqrt_pd(acc);
    if (i + kLanes <= count) {
      _mm256_storeu_pd(out + i, result);
    } else {
      _mm256_maskstore_pd(out + i, TailMask(count - i), result);
    }
  }
}

void ManhattanAvx2(const double* query, const double* data, size_t stride,
                   size_t dim, size_t count, double* out) {
  for (size_t i = 0; i < count; i += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d pts = _mm256_loadu_pd(data + d * stride + i);
      acc = _mm256_add_pd(acc, Abs(_mm256_sub_pd(qd, pts)));
    }
    if (i + kLanes <= count) {
      _mm256_storeu_pd(out + i, acc);
    } else {
      _mm256_maskstore_pd(out + i, TailMask(count - i), acc);
    }
  }
}

void ChebyshevAvx2(const double* query, const double* data, size_t stride,
                   size_t dim, size_t count, double* out) {
  for (size_t i = 0; i < count; i += kLanes) {
    __m256d best = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d pts = _mm256_loadu_pd(data + d * stride + i);
      const __m256d diff = Abs(_mm256_sub_pd(qd, pts));
      // max(diff, best): returns `best` when equal or unordered, matching
      // the scalar `if (diff > best) best = diff`.
      best = _mm256_max_pd(diff, best);
    }
    if (i + kLanes <= count) {
      _mm256_storeu_pd(out + i, best);
    } else {
      _mm256_maskstore_pd(out + i, TailMask(count - i), best);
    }
  }
}

const KernelSet kAvx2Set = {"avx2", kLanes, EuclideanAvx2, ManhattanAvx2,
                            ChebyshevAvx2};

}  // namespace

namespace internal {
const KernelSet& Avx2KernelSetImpl() { return kAvx2Set; }
}  // namespace internal

}  // namespace simd
}  // namespace fkc

#endif  // __AVX2__
