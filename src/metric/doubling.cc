#include "metric/doubling.h"

#include <algorithm>
#include <cmath>

#include "metric/aspect_ratio.h"

namespace fkc {

std::vector<Point> GreedyNet(const Metric& metric,
                             const std::vector<Point>& points, double r) {
  std::vector<Point> net;
  for (const Point& p : points) {
    if (DistanceToSet(metric, p, net) > r) net.push_back(p);
  }
  return net;
}

double EstimateDoublingDimension(const Metric& metric,
                                 const std::vector<Point>& points,
                                 int scales) {
  if (points.size() < 2) return 0.0;
  const double diameter = Diameter(metric, points);
  if (diameter <= 0.0) return 0.0;

  double worst_growth = 1.0;
  double r = diameter / 2.0;
  for (int s = 0; s < scales; ++s, r /= 2.0) {
    const std::vector<Point> coarse = GreedyNet(metric, points, r);
    const std::vector<Point> fine = GreedyNet(metric, points, r / 2.0);
    // Count fine-net points inside each coarse ball of radius r: a doubling
    // space packs at most 2^D points with pairwise distance > r/2 in such a
    // ball (they form an (r/2)-packing).
    for (const Point& center : coarse) {
      int64_t inside = 0;
      for (const Point& q : fine) {
        if (metric.Distance(center, q) <= r) ++inside;
      }
      worst_growth = std::max(worst_growth, static_cast<double>(inside));
    }
    if (fine.size() == points.size()) break;  // finer scales are vacuous
  }
  return std::log2(worst_growth);
}

}  // namespace fkc
