#include "metric/point.h"

#include "common/string_util.h"

namespace fkc {

std::string Point::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6g", coords[i]);
  }
  out += StrFormat(")#%d@%lld", color, static_cast<long long>(arrival));
  return out;
}

}  // namespace fkc
