// Exact pairwise-distance statistics: minimum / maximum pairwise distance and
// the aspect ratio Δ = d_max / d_min that sizes the guess ladder. O(n²);
// intended for dataset preparation, tests, and diagnostics — the streaming
// algorithm itself never calls these.
#ifndef FKC_METRIC_ASPECT_RATIO_H_
#define FKC_METRIC_ASPECT_RATIO_H_

#include <vector>

#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {

/// Exact pairwise distance extrema over `points`.
struct DistanceExtrema {
  /// Smallest non-zero pairwise distance; +inf if fewer than two distinct
  /// locations exist. Zero distances (duplicate locations) are skipped
  /// because they would make the aspect ratio infinite while carrying no
  /// geometric information.
  double min_distance = 0.0;
  /// Largest pairwise distance (the diameter); 0 for < 2 points.
  double max_distance = 0.0;
  /// Number of coincident (distance zero) pairs encountered.
  int64_t zero_pairs = 0;
};

/// Computes extrema by brute force over all pairs.
DistanceExtrema ComputeDistanceExtrema(const Metric& metric,
                                       const std::vector<Point>& points);

/// Aspect ratio Δ = d_max / d_min; returns 1 for degenerate inputs
/// (< 2 distinct locations).
double AspectRatio(const Metric& metric, const std::vector<Point>& points);

/// Exact diameter (max pairwise distance) — brute force.
double Diameter(const Metric& metric, const std::vector<Point>& points);

}  // namespace fkc

#endif  // FKC_METRIC_ASPECT_RATIO_H_
