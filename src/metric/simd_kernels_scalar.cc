// Portable reference kernels + runtime CPU dispatch. This translation unit
// is built with the project's baseline flags (no -mavx*), so the scalar
// path — and the dispatch logic itself — runs on any target.
#include "metric/simd_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace fkc {
namespace simd {

namespace internal {
// Defined in the per-ISA translation units; only referenced when the build
// compiled them in (CMake defines FKC_HAVE_AVX2 / FKC_HAVE_AVX512F).
const KernelSet& Avx2KernelSetImpl();
const KernelSet& Avx512KernelSetImpl();
}  // namespace internal

namespace {

// Dimension-outer, point-inner traversal: each pass streams one contiguous
// row, and out[i] carries pair i's running sum — ascending-dimension
// accumulation per pair, exactly like the scalar Distance loop (and
// auto-vectorizable without changing any pair's rounding).
void EuclideanScalar(const double* query, const double* data, size_t stride,
                     size_t dim, size_t count, double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double* row = data + d * stride;
    const double qd = query[d];
    for (size_t i = 0; i < count; ++i) {
      const double diff = qd - row[i];
      out[i] += diff * diff;
    }
  }
  for (size_t i = 0; i < count; ++i) out[i] = std::sqrt(out[i]);
}

void ManhattanScalar(const double* query, const double* data, size_t stride,
                     size_t dim, size_t count, double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double* row = data + d * stride;
    const double qd = query[d];
    for (size_t i = 0; i < count; ++i) {
      out[i] += std::fabs(qd - row[i]);
    }
  }
}

void ChebyshevScalar(const double* query, const double* data, size_t stride,
                     size_t dim, size_t count, double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double* row = data + d * stride;
    const double qd = query[d];
    for (size_t i = 0; i < count; ++i) {
      const double diff = std::fabs(qd - row[i]);
      if (diff > out[i]) out[i] = diff;
    }
  }
}

const KernelSet kScalarSet = {"scalar", 1, EuclideanScalar, ManhattanScalar,
                              ChebyshevScalar};

bool CpuHasAvx2() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512f() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

const KernelSet* PickActive() {
  const char* env = std::getenv("FKC_SIMD");
  const std::string want = env == nullptr ? "" : env;
  if (want == "scalar") return &kScalarSet;
  const KernelSet* best = &kScalarSet;
  bool matched = want.empty();
  for (const KernelSet* set : CompiledKernelSets()) {
    if (want == set->name) matched = true;  // known name, maybe unsupported
    if (!CpuSupports(*set)) continue;
    if (want == set->name) return set;  // exact requested match
    // A named-but-unsupported request falls back to the widest set.
    if (set->lanes > best->lanes) best = set;
  }
  // Loud fallback: a typo like FKC_SIMD=Scalar silently running AVX-512
  // would make any scalar-vs-SIMD comparison vacuous.
  if (!matched) {
    FKC_LOG(Warning) << "unrecognized FKC_SIMD='" << want
                     << "' (compiled sets: scalar"
#ifdef FKC_HAVE_AVX2
                     << ", avx2"
#endif
#ifdef FKC_HAVE_AVX512F
                     << ", avx512"
#endif
                     << "); using widest supported set '" << best->name << "'";
  }
  return best;
}

}  // namespace

const KernelSet& ScalarKernels() { return kScalarSet; }

std::vector<const KernelSet*> CompiledKernelSets() {
  std::vector<const KernelSet*> sets = {&kScalarSet};
#ifdef FKC_HAVE_AVX2
  sets.push_back(&internal::Avx2KernelSetImpl());
#endif
#ifdef FKC_HAVE_AVX512F
  sets.push_back(&internal::Avx512KernelSetImpl());
#endif
  return sets;
}

bool CpuSupports(const KernelSet& set) {
  if (std::strcmp(set.name, "scalar") == 0) return true;
  if (std::strcmp(set.name, "avx2") == 0) return CpuHasAvx2();
  if (std::strcmp(set.name, "avx512") == 0) return CpuHasAvx512f();
  return false;
}

const KernelSet& ActiveKernels() {
  static const KernelSet* active = PickActive();
  return *active;
}

}  // namespace simd
}  // namespace fkc
