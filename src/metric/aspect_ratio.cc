#include "metric/aspect_ratio.h"

#include <cmath>
#include <limits>

namespace fkc {

DistanceExtrema ComputeDistanceExtrema(const Metric& metric,
                                       const std::vector<Point>& points) {
  DistanceExtrema out;
  out.min_distance = std::numeric_limits<double>::infinity();
  out.max_distance = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const double d = metric.Distance(points[i], points[j]);
      if (d == 0.0) {
        ++out.zero_pairs;
        continue;
      }
      if (d < out.min_distance) out.min_distance = d;
      if (d > out.max_distance) out.max_distance = d;
    }
  }
  return out;
}

double AspectRatio(const Metric& metric, const std::vector<Point>& points) {
  const DistanceExtrema extrema = ComputeDistanceExtrema(metric, points);
  if (extrema.max_distance <= 0.0 ||
      !std::isfinite(extrema.min_distance)) {
    return 1.0;
  }
  return extrema.max_distance / extrema.min_distance;
}

double Diameter(const Metric& metric, const std::vector<Point>& points) {
  double best = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const double d = metric.Distance(points[i], points[j]);
      if (d > best) best = d;
    }
  }
  return best;
}

}  // namespace fkc
