// Exact (exponential-time) solvers used as ground truth in tests and in the
// approximation-ratio property suites. Never use these outside tests: they
// enumerate center combinations.
#ifndef FKC_SEQUENTIAL_BRUTE_FORCE_H_
#define FKC_SEQUENTIAL_BRUTE_FORCE_H_

#include "matroid/color_constraint.h"
#include "sequential/fair_center_solver.h"

namespace fkc {

/// Exact fair center: enumerates, per color, all combinations of
/// min(cap_i, count_i) points (adding centers never increases the radius, so
/// an optimal solution of maximal per-color size always exists) and takes the
/// best cartesian combination. Guarded to tiny instances.
Result<FairCenterSolution> BruteForceFairCenter(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint);

/// Exact unconstrained k-center: enumerates all size-min(k,n) subsets.
Result<FairCenterSolution> BruteForceKCenter(const Metric& metric,
                                             const std::vector<Point>& points,
                                             int k);

/// FairCenterSolver adapter around BruteForceFairCenter (alpha = 1).
class BruteForceSolver final : public FairCenterSolver {
 public:
  Result<FairCenterSolution> Solve(
      const Metric& metric, const std::vector<Point>& points,
      const ColorConstraint& constraint) const override {
    return BruteForceFairCenter(metric, points, constraint);
  }
  double ApproximationFactor() const override { return 1.0; }
  std::string Name() const override { return "BruteForce"; }
};

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_BRUTE_FORCE_H_
