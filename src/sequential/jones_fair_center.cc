#include "sequential/jones_fair_center.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "matching/capacitated_matching.h"
#include "sequential/gonzalez.h"

namespace fkc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// For each head, the distance to the nearest point of each color and that
// point's index. O(n * k) distance evaluations.
struct ColorTable {
  // nearest_distance[h][c], nearest_index[h][c]
  std::vector<std::vector<double>> nearest_distance;
  std::vector<std::vector<int>> nearest_index;
};

ColorTable BuildColorTable(const Metric& metric,
                           const std::vector<Point>& points,
                           const std::vector<int>& head_indices, int ell) {
  ColorTable table;
  const size_t heads = head_indices.size();
  table.nearest_distance.assign(heads, std::vector<double>(ell, kInf));
  table.nearest_index.assign(heads, std::vector<int>(ell, -1));
  for (size_t h = 0; h < heads; ++h) {
    const Point& head = points[head_indices[h]];
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = points[i].color;
      const double d = metric.Distance(head, points[i]);
      if (d < table.nearest_distance[h][c]) {
        table.nearest_distance[h][c] = d;
        table.nearest_index[h][c] = static_cast<int>(i);
      }
    }
  }
  return table;
}

// Attempts to match the prefix of heads with insertion distance > 2*rho to
// color slots using balls of radius rho. On success fills `centers`.
bool TryRadius(double rho, const GonzalezResult& gonzalez,
               const ColorTable& table, const ColorConstraint& constraint,
               const std::vector<Point>& points,
               std::vector<Point>* centers) {
  // Maximal prefix with delta_j > 2*rho; delta_0 = +inf so the prefix is
  // never empty.
  size_t prefix = 0;
  while (prefix < gonzalez.insertion_distances.size() &&
         gonzalez.insertion_distances[prefix] > 2.0 * rho) {
    ++prefix;
  }

  std::vector<std::vector<int>> allowed(prefix);
  for (size_t h = 0; h < prefix; ++h) {
    for (int c = 0; c < constraint.ell(); ++c) {
      if (constraint.cap(c) > 0 && table.nearest_distance[h][c] <= rho) {
        allowed[h].push_back(c);
      }
    }
  }

  const CapacitatedMatchingResult matching =
      MaximumCapacitatedMatching(allowed, constraint);
  if (!matching.Saturates(static_cast<int>(prefix))) return false;

  centers->clear();
  for (size_t h = 0; h < prefix; ++h) {
    const int color = matching.assigned_color[h];
    const int point_index = table.nearest_index[h][color];
    FKC_CHECK_GE(point_index, 0);
    centers->push_back(points[point_index]);
  }
  return true;
}

}  // namespace

Result<FairCenterSolution> JonesFairCenter::Solve(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint) const {
  if (points.empty()) return FairCenterSolution{};
  for (const Point& p : points) {
    if (p.color < 0 || p.color >= constraint.ell()) {
      return Status::InvalidArgument("point color out of range: " +
                                     p.ToString());
    }
  }

  const int k = constraint.TotalK();
  if (k <= 0) return Status::Infeasible("all color caps are zero");

  const GonzalezResult gonzalez = GonzalezKCenter(metric, points, k);
  const ColorTable table =
      BuildColorTable(metric, points, gonzalez.head_indices, constraint.ell());

  // Candidate radii where feasibility can flip: head-to-color distances and
  // prefix breakpoints delta_j / 2 (and 0, for the degenerate exact case).
  std::vector<double> candidates = {0.0};
  for (const auto& row : table.nearest_distance) {
    for (double d : row) {
      if (std::isfinite(d)) candidates.push_back(d);
    }
  }
  for (double delta : gonzalez.insertion_distances) {
    if (std::isfinite(delta)) candidates.push_back(delta / 2.0);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Feasibility is monotone in rho: binary search for the smallest feasible
  // candidate.
  std::vector<Point> centers;
  size_t lo = 0;
  size_t hi = candidates.size();  // exclusive; candidates[hi-1] assumed tested
  if (!TryRadius(candidates.back(), gonzalez, table, constraint, points,
                 &centers)) {
    return Status::Infeasible(
        "no head can be matched to any color with spare capacity");
  }
  hi = candidates.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    std::vector<Point> attempt;
    if (TryRadius(candidates[mid], gonzalez, table, constraint, points,
                  &attempt)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<Point> final_centers;
  FKC_CHECK(TryRadius(candidates[lo], gonzalez, table, constraint, points,
                      &final_centers));

  FairCenterSolution solution;
  solution.centers = std::move(final_centers);
  solution.radius = ClusteringRadius(metric, points, solution.centers);
  return solution;
}

}  // namespace fkc
