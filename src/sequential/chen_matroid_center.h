// Matroid center after Chen, Li, Liang & Wang (Algorithmica 2016) [10]: the
// first 3-approximation for center clustering under an arbitrary matroid
// constraint, and the slower of the two sequential baselines in the paper's
// evaluation (labelled ChenEtAl).
//
// Scheme, per candidate radius r:
//   1. Greedily extract heads: a maximal subset at pairwise distance > 2r
//      (every point ends up within 2r of a head). If a radius-r solution
//      exists, heads map injectively to its centers, so |heads| <= rank.
//   2. The balls B(head, r) are pairwise disjoint; a radius-r solution must
//      contain one center inside each ball. Picking one point per ball that
//      is independent in the input matroid is a matroid-intersection problem
//      (input matroid x unit-capacity partition over balls); for the fair
//      (partition) case it reduces to a head <-> color-slot matching.
//   3. On success every point is within 2r of a head and the head within r of
//      its chosen center: radius <= 3r. On failure OPT > r.
// The smallest admissible r is located by binary search over all pairwise
// distances (exact; OPT is always a point-to-point distance) or, for large
// inputs, over a geometric ladder — giving 3(1+eta)-approximation.
#ifndef FKC_SEQUENTIAL_CHEN_MATROID_CENTER_H_
#define FKC_SEQUENTIAL_CHEN_MATROID_CENTER_H_

#include "matroid/matroid.h"
#include "sequential/fair_center_solver.h"

namespace fkc {

/// Tuning knobs for the radius search.
struct ChenOptions {
  /// Inputs up to this size binary-search the exact sorted O(n^2) pairwise
  /// distance list; larger inputs use the geometric ladder below.
  int exact_candidate_limit = 2048;
  /// Ladder progression factor for large inputs; the approximation becomes
  /// 3 * ladder_factor.
  double ladder_factor = 1.05;
};

/// Generic matroid-center: `matroid` is an independence oracle over indices
/// into `points`. Returns kInfeasible when not even one independent center
/// exists for a non-empty input.
Result<FairCenterSolution> SolveMatroidCenter(const Metric& metric,
                                              const std::vector<Point>& points,
                                              const Matroid& matroid,
                                              const ChenOptions& options = {});

/// FairCenterSolver adapter: fair center as partition-matroid center, with
/// the head <-> color matching fast path.
class ChenMatroidCenter final : public FairCenterSolver {
 public:
  explicit ChenMatroidCenter(ChenOptions options = {}) : options_(options) {}

  Result<FairCenterSolution> Solve(
      const Metric& metric, const std::vector<Point>& points,
      const ColorConstraint& constraint) const override;

  double ApproximationFactor() const override { return 3.0; }
  std::string Name() const override { return "ChenEtAl"; }

 private:
  ChenOptions options_;
};

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_CHEN_MATROID_CENTER_H_
