#include "sequential/chen_matroid_center.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "matching/capacitated_matching.h"
#include "matroid/matroid_intersection.h"
#include "matroid/partition_matroid.h"

namespace fkc {
namespace {

// Greedy maximal 2r-separated subset; every point is within 2r of the result.
std::vector<int> GreedyHeads(const Metric& metric,
                             const std::vector<Point>& points, double r) {
  std::vector<int> heads;
  for (size_t i = 0; i < points.size(); ++i) {
    bool covered = false;
    for (int h : heads) {
      if (metric.Distance(points[i], points[h]) <= 2.0 * r) {
        covered = true;
        break;
      }
    }
    if (!covered) heads.push_back(static_cast<int>(i));
  }
  return heads;
}

// View of `inner` restricted to a subset of its ground set; local element i
// corresponds to global element global_ids[i].
class SubsetMatroidView final : public Matroid {
 public:
  SubsetMatroidView(const Matroid& inner, std::vector<int> global_ids)
      : inner_(inner), global_ids_(std::move(global_ids)) {}

  int GroundSize() const override {
    return static_cast<int>(global_ids_.size());
  }
  bool IsIndependent(const std::vector<int>& elements) const override {
    std::vector<int> globals;
    globals.reserve(elements.size());
    for (int e : elements) globals.push_back(global_ids_[e]);
    return inner_.IsIndependent(globals);
  }
  int Rank() const override { return inner_.Rank(); }
  std::string Name() const override { return "subset(" + inner_.Name() + ")"; }

 private:
  const Matroid& inner_;
  std::vector<int> global_ids_;
};

// Partition matroid with one unit-capacity part per ball.
class BallPartitionMatroid final : public Matroid {
 public:
  BallPartitionMatroid(std::vector<int> ball_of_element, int ball_count)
      : ball_of_element_(std::move(ball_of_element)),
        ball_count_(ball_count) {}

  int GroundSize() const override {
    return static_cast<int>(ball_of_element_.size());
  }
  bool IsIndependent(const std::vector<int>& elements) const override {
    std::vector<bool> used(ball_count_, false);
    for (int e : elements) {
      const int ball = ball_of_element_[e];
      if (used[ball]) return false;
      used[ball] = true;
    }
    return true;
  }
  int Rank() const override { return ball_count_; }
  std::string Name() const override { return "ball-partition"; }

 private:
  std::vector<int> ball_of_element_;
  int ball_count_;
};

// Tests one radius with the generic matroid-intersection machinery. On
// success fills `centers` with one independent pick per ball.
bool TryRadiusGeneric(const Metric& metric, const std::vector<Point>& points,
                      const Matroid& matroid, double r,
                      std::vector<Point>* centers) {
  const std::vector<int> heads = GreedyHeads(metric, points, r);
  if (static_cast<int>(heads.size()) > matroid.Rank()) return false;

  // Eligible elements: points inside some head's r-ball (balls are disjoint
  // because heads are > 2r apart).
  std::vector<int> global_ids;
  std::vector<int> ball_of_element;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t h = 0; h < heads.size(); ++h) {
      if (metric.Distance(points[i], points[heads[h]]) <= r) {
        global_ids.push_back(static_cast<int>(i));
        ball_of_element.push_back(static_cast<int>(h));
        break;
      }
    }
  }

  const SubsetMatroidView restricted(matroid, global_ids);
  const BallPartitionMatroid by_ball(ball_of_element,
                                     static_cast<int>(heads.size()));
  const std::vector<int> common = MaxCommonIndependentSet(restricted, by_ball);
  if (common.size() != heads.size()) return false;

  centers->clear();
  for (int local : common) centers->push_back(points[global_ids[local]]);
  return true;
}

// Partition-matroid fast path: head <-> color capacitated matching.
bool TryRadiusFair(const Metric& metric, const std::vector<Point>& points,
                   const ColorConstraint& constraint, double r,
                   std::vector<Point>* centers) {
  const std::vector<int> heads = GreedyHeads(metric, points, r);
  if (static_cast<int>(heads.size()) > constraint.TotalK()) return false;

  // For each head and color, the nearest in-ball point of that color.
  const int ell = constraint.ell();
  std::vector<std::vector<double>> best_distance(
      heads.size(), std::vector<double>(ell, std::numeric_limits<double>::infinity()));
  std::vector<std::vector<int>> best_index(heads.size(),
                                           std::vector<int>(ell, -1));
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t h = 0; h < heads.size(); ++h) {
      const double d = metric.Distance(points[i], points[heads[h]]);
      if (d <= r && d < best_distance[h][points[i].color]) {
        best_distance[h][points[i].color] = d;
        best_index[h][points[i].color] = static_cast<int>(i);
        break;  // balls are disjoint: no other head can claim this point
      }
    }
  }

  std::vector<std::vector<int>> allowed(heads.size());
  for (size_t h = 0; h < heads.size(); ++h) {
    for (int c = 0; c < ell; ++c) {
      if (constraint.cap(c) > 0 && best_index[h][c] != -1) {
        allowed[h].push_back(c);
      }
    }
  }
  const CapacitatedMatchingResult matching =
      MaximumCapacitatedMatching(allowed, constraint);
  if (!matching.Saturates(static_cast<int>(heads.size()))) return false;

  centers->clear();
  for (size_t h = 0; h < heads.size(); ++h) {
    centers->push_back(points[best_index[h][matching.assigned_color[h]]]);
  }
  return true;
}

// Builds the sorted candidate radius list. Exact: every pairwise distance
// (plus zero). Ladder: geometric progression bracketing [d_lo, diameter].
std::vector<double> CandidateRadii(const Metric& metric,
                                   const std::vector<Point>& points,
                                   const ChenOptions& options) {
  const int n = static_cast<int>(points.size());
  std::vector<double> candidates = {0.0};
  if (n <= options.exact_candidate_limit) {
    candidates.reserve(static_cast<size_t>(n) * (n - 1) / 2 + 1);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        candidates.push_back(metric.Distance(points[i], points[j]));
      }
    }
  } else {
    // Bracket: diameter <= 2 * max distance from an arbitrary anchor; the
    // smallest useful radius is the smallest non-zero anchor distance.
    double max_anchor = 0.0;
    double min_anchor = std::numeric_limits<double>::infinity();
    for (int i = 1; i < n; ++i) {
      const double d = metric.Distance(points[0], points[i]);
      max_anchor = std::max(max_anchor, d);
      if (d > 0.0) min_anchor = std::min(min_anchor, d);
    }
    if (max_anchor == 0.0) return candidates;  // all points coincide
    if (!std::isfinite(min_anchor)) min_anchor = max_anchor;
    double r = min_anchor / 4.0;
    const double top = 2.0 * max_anchor;
    while (r < top) {
      candidates.push_back(r);
      r *= options.ladder_factor;
    }
    candidates.push_back(top);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

// Shared binary-search driver. `try_radius(r, centers)` reports feasibility.
template <typename TryFn>
Result<FairCenterSolution> SearchRadius(const Metric& metric,
                                        const std::vector<Point>& points,
                                        const std::vector<double>& candidates,
                                        TryFn try_radius) {
  std::vector<Point> centers;
  if (!try_radius(candidates.back(), &centers)) {
    return Status::Infeasible("no independent center set covers the input");
  }
  size_t lo = 0;
  size_t hi = candidates.size() - 1;  // known feasible
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    std::vector<Point> attempt;
    if (try_radius(candidates[mid], &attempt)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<Point> final_centers;
  FKC_CHECK(try_radius(candidates[lo], &final_centers));
  FairCenterSolution solution;
  solution.centers = std::move(final_centers);
  solution.radius = ClusteringRadius(metric, points, solution.centers);
  return solution;
}

}  // namespace

Result<FairCenterSolution> SolveMatroidCenter(const Metric& metric,
                                              const std::vector<Point>& points,
                                              const Matroid& matroid,
                                              const ChenOptions& options) {
  if (points.empty()) return FairCenterSolution{};
  FKC_CHECK_EQ(matroid.GroundSize(), static_cast<int>(points.size()));
  const std::vector<double> candidates =
      CandidateRadii(metric, points, options);
  return SearchRadius(metric, points, candidates,
                      [&](double r, std::vector<Point>* centers) {
                        return TryRadiusGeneric(metric, points, matroid, r,
                                                centers);
                      });
}

Result<FairCenterSolution> ChenMatroidCenter::Solve(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint) const {
  if (points.empty()) return FairCenterSolution{};
  for (const Point& p : points) {
    if (p.color < 0 || p.color >= constraint.ell()) {
      return Status::InvalidArgument("point color out of range: " +
                                     p.ToString());
    }
  }
  if (constraint.TotalK() <= 0) {
    return Status::Infeasible("all color caps are zero");
  }
  const std::vector<double> candidates =
      CandidateRadii(metric, points, options_);
  return SearchRadius(metric, points, candidates,
                      [&](double r, std::vector<Point>* centers) {
                        return TryRadiusFair(metric, points, constraint, r,
                                             centers);
                      });
}

}  // namespace fkc
