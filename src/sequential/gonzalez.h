// Gonzalez's greedy 2-approximation for unconstrained k-center [23]. Beyond
// being a baseline, it is the head-selection engine inside the Jones and
// Kleindessner fair solvers.
#ifndef FKC_SEQUENTIAL_GONZALEZ_H_
#define FKC_SEQUENTIAL_GONZALEZ_H_

#include <vector>

#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {

/// Output of the greedy farthest-point traversal.
struct GonzalezResult {
  /// Indices of the selected heads, in selection order.
  std::vector<int> head_indices;
  /// insertion_distances[j] = distance of head j from heads 0..j-1 at the
  /// moment of selection; +inf for the first head. Non-increasing.
  std::vector<double> insertion_distances;
  /// Coverage radius: max over all points of the distance to the full head
  /// set. Classic guarantee: at most 2x the optimal k-center radius.
  double coverage_radius = 0.0;
};

/// Runs the farthest-point greedy starting from `first_index`, selecting
/// min(k, n) heads. O(n * k) distance evaluations.
GonzalezResult GonzalezKCenter(const Metric& metric,
                               const std::vector<Point>& points, int k,
                               int first_index = 0);

/// Convenience: materializes the head points of a GonzalezResult.
std::vector<Point> HeadPoints(const std::vector<Point>& points,
                              const GonzalezResult& result);

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_GONZALEZ_H_
