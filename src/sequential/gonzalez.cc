#include "sequential/gonzalez.h"

#include <limits>

#include "common/logging.h"

namespace fkc {

GonzalezResult GonzalezKCenter(const Metric& metric,
                               const std::vector<Point>& points, int k,
                               int first_index) {
  GonzalezResult result;
  if (points.empty() || k <= 0) return result;
  FKC_CHECK_GE(first_index, 0);
  FKC_CHECK_LT(first_index, static_cast<int>(points.size()));

  const int n = static_cast<int>(points.size());
  const int heads_wanted = std::min(k, n);

  // nearest[i] = distance from point i to the current head set.
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());

  int next_head = first_index;
  double next_distance = std::numeric_limits<double>::infinity();
  for (int j = 0; j < heads_wanted; ++j) {
    result.head_indices.push_back(next_head);
    result.insertion_distances.push_back(next_distance);

    const Point& head = points[next_head];
    next_distance = 0.0;
    next_head = -1;
    for (int i = 0; i < n; ++i) {
      const double d = metric.Distance(points[i], head);
      if (d < nearest[i]) nearest[i] = d;
      if (nearest[i] > next_distance) {
        next_distance = nearest[i];
        next_head = i;
      }
    }
    if (next_head == -1) {
      // All points coincide with the selected heads.
      next_distance = 0.0;
      break;
    }
  }

  result.coverage_radius =
      result.head_indices.empty() ? 0.0 : next_distance;
  return result;
}

std::vector<Point> HeadPoints(const std::vector<Point>& points,
                              const GonzalezResult& result) {
  std::vector<Point> heads;
  heads.reserve(result.head_indices.size());
  for (int idx : result.head_indices) heads.push_back(points[idx]);
  return heads;
}

}  // namespace fkc
