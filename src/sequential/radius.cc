#include "sequential/radius.h"

#include <limits>

#include "common/logging.h"

namespace fkc {

double ClusteringRadius(const Metric& metric, const std::vector<Point>& window,
                        const std::vector<Point>& centers) {
  if (window.empty()) return 0.0;
  if (centers.empty()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (const Point& p : window) {
    const double d = DistanceToSet(metric, p, centers);
    if (d > worst) worst = d;
  }
  return worst;
}

std::vector<int> AssignToCenters(const Metric& metric,
                                 const std::vector<Point>& window,
                                 const std::vector<Point>& centers) {
  FKC_CHECK(!centers.empty());
  std::vector<int> assignment;
  assignment.reserve(window.size());
  for (const Point& p : window) {
    int best = 0;
    double best_distance = metric.Distance(p, centers[0]);
    for (size_t c = 1; c < centers.size(); ++c) {
      const double d = metric.Distance(p, centers[c]);
      if (d < best_distance) {
        best_distance = d;
        best = static_cast<int>(c);
      }
    }
    assignment.push_back(best);
  }
  return assignment;
}

}  // namespace fkc
