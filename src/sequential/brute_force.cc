#include "sequential/brute_force.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/logging.h"

namespace fkc {
namespace {

// Enumerates all size-`take` combinations of pool[start..], appending chosen
// indices to *scratch and invoking `fn` on each complete combination.
void ForEachCombination(const std::vector<int>& pool, size_t start, int take,
                        std::vector<int>* scratch,
                        const std::function<void(const std::vector<int>&)>& fn) {
  if (take == 0) {
    fn(*scratch);
    return;
  }
  // Leave room for the remaining picks.
  for (size_t i = start; i + static_cast<size_t>(take) <= pool.size(); ++i) {
    scratch->push_back(pool[i]);
    ForEachCombination(pool, i + 1, take - 1, scratch, fn);
    scratch->pop_back();
  }
}

}  // namespace

Result<FairCenterSolution> BruteForceFairCenter(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint) {
  if (points.empty()) return FairCenterSolution{};
  FKC_CHECK_LE(points.size(), 64u)
      << "brute force is exponential; keep test instances tiny";
  for (const Point& p : points) {
    if (p.color < 0 || p.color >= constraint.ell()) {
      return Status::InvalidArgument("point color out of range: " +
                                     p.ToString());
    }
  }

  // Pools per color, and the per-color take = min(cap, available): adding a
  // center never increases the radius, so optimal solutions of maximal
  // per-color cardinality exist.
  std::vector<std::vector<int>> pool(constraint.ell());
  for (size_t i = 0; i < points.size(); ++i) {
    pool[points[i].color].push_back(static_cast<int>(i));
  }
  std::vector<int> take(constraint.ell());
  int total_take = 0;
  for (int c = 0; c < constraint.ell(); ++c) {
    take[c] =
        std::min<int>(constraint.cap(c), static_cast<int>(pool[c].size()));
    total_take += take[c];
  }
  if (total_take == 0) {
    return Status::Infeasible("all usable color caps are zero");
  }

  // Cartesian product of per-color combinations via recursion over colors.
  FairCenterSolution best;
  best.radius = std::numeric_limits<double>::infinity();
  std::vector<int> chosen;

  std::function<void(int)> recurse = [&](int color) {
    if (color == constraint.ell()) {
      std::vector<Point> centers;
      centers.reserve(chosen.size());
      for (int idx : chosen) centers.push_back(points[idx]);
      const double radius = ClusteringRadius(metric, points, centers);
      if (radius < best.radius) {
        best.radius = radius;
        best.centers = std::move(centers);
      }
      return;
    }
    if (take[color] == 0) {
      recurse(color + 1);
      return;
    }
    std::vector<int> scratch;
    ForEachCombination(pool[color], 0, take[color], &scratch,
                       [&](const std::vector<int>& combo) {
                         const size_t before = chosen.size();
                         chosen.insert(chosen.end(), combo.begin(),
                                       combo.end());
                         recurse(color + 1);
                         chosen.resize(before);
                       });
  };
  recurse(0);

  FKC_CHECK(std::isfinite(best.radius));
  return best;
}

Result<FairCenterSolution> BruteForceKCenter(const Metric& metric,
                                             const std::vector<Point>& points,
                                             int k) {
  if (points.empty()) return FairCenterSolution{};
  if (k <= 0) return Status::Infeasible("k must be positive");
  FKC_CHECK_LE(points.size(), 64u);

  // Single-color reduction: reuse the fair enumerator with one color.
  std::vector<Point> recolored = points;
  for (Point& p : recolored) p.color = 0;
  auto result = BruteForceFairCenter(
      metric, recolored,
      ColorConstraint({std::min<int>(k, static_cast<int>(points.size()))}));
  if (!result.ok()) return result.status();
  // Restore original colors on the witness centers (match by coordinates).
  FairCenterSolution solution = std::move(result).value();
  for (Point& c : solution.centers) {
    for (const Point& original : points) {
      if (original.coords == c.coords) {
        c.color = original.color;
        break;
      }
    }
  }
  return solution;
}

}  // namespace fkc
