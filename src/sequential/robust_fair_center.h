// Robust (outlier-tolerant) fair center — the extension the paper's
// conclusion singles out as future work: "the extension of our algorithms to
// the robust variant of fair center, tolerating a fixed number of outliers".
//
// Problem: given colored points, caps k_i, and an outlier budget z, choose a
// feasible center set C minimizing the radius needed to cover all but at
// most z points.
//
// Algorithm (bicriteria, in the spirit of Charikar et al. and of the robust
// matroid-center line [4, 25]): binary search over candidate radii; for a
// guess r,
//   1. repeatedly pick the point whose ball of radius r covers the most
//      not-yet-covered points (at most k rounds, the classic robust-center
//      greedy), marking balls of radius 3r as covered;
//   2. the picked heads are pairwise > 2r apart by construction (each new
//      head is uncovered, i.e. outside every earlier 3r ball); match heads
//      to color slots with balls of radius r, as in the fair solvers —
//      unmatched heads are dropped and their points count toward the
//      uncovered budget;
//   3. accept the guess if the points left uncovered by the matched heads'
//      3r-balls (plus r for the center shift: 4r total) number at most z.
// Accepting yields radius <= 4r with <= z outliers; the guarantee is
// bicriteria (constant-factor radius at the exact outlier budget).
#ifndef FKC_SEQUENTIAL_ROBUST_FAIR_CENTER_H_
#define FKC_SEQUENTIAL_ROBUST_FAIR_CENTER_H_

#include "matroid/color_constraint.h"
#include "sequential/fair_center_solver.h"

namespace fkc {

/// Solution of a robust run: centers plus the points they exclude.
struct RobustFairCenterSolution {
  std::vector<Point> centers;
  /// Radius covering all non-outlier points.
  double radius = 0.0;
  /// Indices (into the input) of the excluded points; size <= z.
  std::vector<int> outlier_indices;
};

/// Solves fair center with at most `num_outliers` excluded points.
/// Returns kInfeasible when no feasible non-empty center set exists.
Result<RobustFairCenterSolution> SolveRobustFairCenter(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint, int num_outliers);

/// Exact robust fair center by enumeration (tests only): minimizes over all
/// cap-respecting center sets the radius of the best (n - z)-point coverage.
Result<RobustFairCenterSolution> BruteForceRobustFairCenter(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint, int num_outliers);

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_ROBUST_FAIR_CENTER_H_
