// Fair k-center heuristic after Kleindessner, Awasthi & Morgenstern (ICML
// 2019) [12]: a linear-time "greedy with shifting" scheme with a
// (3 * 2^(ell-1) - 1)-approximation guarantee. The paper cites it as the
// first linear-time fair-center algorithm; it is not part of the headline
// evaluation (Jones superseded it) but is included as an extension baseline.
//
// Scheme: run the farthest-point greedy, but charge each selection against
// the per-color budget. When the farthest point p has an exhausted color,
// *shift* the selection to the nearest point of a color with remaining
// budget; p stays covered within the shift distance, which the analysis
// bounds by a geometric accumulation across colors — the source of the
// 2^(ell-1) factor.
#ifndef FKC_SEQUENTIAL_KLEINDESSNER_H_
#define FKC_SEQUENTIAL_KLEINDESSNER_H_

#include "sequential/fair_center_solver.h"

namespace fkc {

class KleindessnerFairCenter final : public FairCenterSolver {
 public:
  Result<FairCenterSolution> Solve(
      const Metric& metric, const std::vector<Point>& points,
      const ColorConstraint& constraint) const override;

  /// 3 * 2^(ell-1) - 1 for ell colors; reported for ell = 2 (the factor the
  /// delta-parameter rule would use if this solver were plugged into Query).
  double ApproximationFactor() const override { return 5.0; }
  std::string Name() const override { return "Kleindessner"; }
};

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_KLEINDESSNER_H_
