// Abstract interface for sequential fair-center algorithms. The sliding
// window Query procedure (Algorithm 3 of the paper) is parameterized by a
// solver "A": the approximation of the streaming algorithm is alpha + epsilon
// where alpha is the solver's guarantee.
#ifndef FKC_SEQUENTIAL_FAIR_CENTER_SOLVER_H_
#define FKC_SEQUENTIAL_FAIR_CENTER_SOLVER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "matroid/color_constraint.h"
#include "metric/metric.h"
#include "metric/point.h"
#include "sequential/radius.h"

namespace fkc {

/// A sequential fair-center algorithm: given a point set and color caps,
/// returns a center set that respects every cap.
class FairCenterSolver {
 public:
  virtual ~FairCenterSolver() = default;

  /// Computes a fair center set for `points`. Returns kInfeasible when no
  /// non-empty feasible center set exists (e.g. every occurring color has a
  /// zero cap) and the input is non-empty. An empty input yields an empty
  /// solution with radius 0.
  virtual Result<FairCenterSolution> Solve(
      const Metric& metric, const std::vector<Point>& points,
      const ColorConstraint& constraint) const = 0;

  /// Worst-case approximation factor of the algorithm (for documentation and
  /// for the delta = eps / ((1+beta)(1+2*alpha)) parameter rule).
  virtual double ApproximationFactor() const = 0;

  virtual std::string Name() const = 0;
};

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_FAIR_CENTER_SOLVER_H_
