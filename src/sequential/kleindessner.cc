#include "sequential/kleindessner.h"

#include <limits>

#include "common/logging.h"

namespace fkc {

Result<FairCenterSolution> KleindessnerFairCenter::Solve(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint) const {
  if (points.empty()) return FairCenterSolution{};
  for (const Point& p : points) {
    if (p.color < 0 || p.color >= constraint.ell()) {
      return Status::InvalidArgument("point color out of range: " +
                                     p.ToString());
    }
  }
  if (constraint.TotalK() <= 0) {
    return Status::Infeasible("all color caps are zero");
  }

  const int n = static_cast<int>(points.size());
  std::vector<int> remaining = constraint.caps();
  std::vector<bool> selected(n, false);
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  std::vector<Point> centers;

  // Budget-aware farthest-point traversal. Each round picks the point
  // farthest from the current centers; if its color budget is spent, the
  // pick shifts to the nearest point (to the farthest one) whose color still
  // has budget.
  const int rounds = std::min(constraint.TotalK(), n);
  for (int round = 0; round < rounds; ++round) {
    // Farthest unselected point from the current center set; the first round
    // deterministically picks index 0 (infinite initial distances).
    int farthest = -1;
    double farthest_distance = -1.0;
    for (int i = 0; i < n; ++i) {
      if (selected[i]) continue;
      if (nearest[i] > farthest_distance) {
        farthest_distance = nearest[i];
        farthest = i;
      }
    }
    if (farthest == -1 || farthest_distance == 0.0) break;  // all covered

    int pick = -1;
    if (remaining[points[farthest].color] > 0) {
      pick = farthest;
    } else {
      // Shift: nearest point to `farthest` with spare color budget.
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        if (selected[i] || remaining[points[i].color] == 0) continue;
        const double d = metric.Distance(points[farthest], points[i]);
        if (d < best) {
          best = d;
          pick = i;
        }
      }
      if (pick == -1) break;  // every remaining color budget is exhausted
    }

    selected[pick] = true;
    --remaining[points[pick].color];
    centers.push_back(points[pick]);
    for (int i = 0; i < n; ++i) {
      const double d = metric.Distance(points[i], points[pick]);
      if (d < nearest[i]) nearest[i] = d;
    }
  }

  if (centers.empty()) {
    return Status::Infeasible("no selectable point under the color caps");
  }
  FairCenterSolution solution;
  solution.centers = std::move(centers);
  solution.radius = ClusteringRadius(metric, points, solution.centers);
  return solution;
}

}  // namespace fkc
