// Fair k-center via maximum matching, after Jones, Nguyen & Nguyen (ICML
// 2020) [13]: the 3-approximation sequential algorithm the paper plugs into
// its Query procedure as "A".
//
// Reconstruction notes (the reference pseudocode is not bundled with the
// paper): we implement the scheme its guarantee rests on.
//
//   1. Run the Gonzalez farthest-point greedy for k = sum(k_i) heads. The
//      insertion distances delta_1 >= delta_2 >= ... are non-increasing, and
//      the first m heads are pairwise > delta_m apart.
//   2. For a candidate radius rho, keep the maximal head prefix with
//      delta_j > 2*rho. If a fair solution of radius rho exists, these heads
//      map injectively to optimal centers within rho (two heads > 2*rho apart
//      cannot share one), so a head <-> color-slot matching saturating the
//      prefix exists, where head h may use color c iff some point of color c
//      lies within rho of h.
//   3. Find the smallest feasible rho (feasibility is monotone: growing rho
//      shrinks the prefix and grows the balls) by binary search over the
//      O(k * ell) head-to-nearest-color distances plus the O(k) prefix
//      breakpoints delta_j / 2.
//   4. Output, for each matched head, the closest point of the matched color.
//      Every point is within max(2*rho, r_cov) of its head (r_cov <= 2*OPT is
//      the full Gonzalez coverage radius) and the head within rho of its
//      center, giving radius <= 2*OPT + rho* <= 3*OPT since rho* <= OPT.
//
// Runtime: O(n*k) for Gonzalez and the per-color distance table, plus
// O((k*ell + k) log(k*ell)) matchings on k-vertex graphs — matching the
// "linear in k and n" claim of [13].
#ifndef FKC_SEQUENTIAL_JONES_FAIR_CENTER_H_
#define FKC_SEQUENTIAL_JONES_FAIR_CENTER_H_

#include "sequential/fair_center_solver.h"

namespace fkc {

/// The 3-approximate fair-center solver used as the default `A`.
class JonesFairCenter final : public FairCenterSolver {
 public:
  Result<FairCenterSolution> Solve(
      const Metric& metric, const std::vector<Point>& points,
      const ColorConstraint& constraint) const override;

  double ApproximationFactor() const override { return 3.0; }
  std::string Name() const override { return "Jones"; }
};

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_JONES_FAIR_CENTER_H_
