#include "sequential/k_median.h"

#include <algorithm>
#include <cstddef>
#include <limits>

#include "common/logging.h"
#include "metric/coordinate_pool.h"
#include "sequential/gonzalez.h"

namespace fkc {
namespace {

// Assignment state of the current medoid set: for every point its nearest
// medoid (lowest index on ties), that distance, and the runner-up distance
// (the cost of losing the nearest medoid — what single-swap evaluation
// needs to price a removal in O(1) per point).
struct Assignment {
  std::vector<int> nearest;        // medoid INDEX INTO `centers`, not point
  std::vector<double> d_nearest;
  std::vector<double> d_second;
  double cost = 0.0;
};

Assignment Assign(const std::vector<double>& dist, size_t n,
                  const std::vector<int>& centers) {
  Assignment out;
  out.nearest.assign(n, 0);
  out.d_nearest.assign(n, 0.0);
  out.d_second.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    double second = std::numeric_limits<double>::infinity();
    int best_at = 0;
    for (size_t c = 0; c < centers.size(); ++c) {
      const double d = dist[i * n + static_cast<size_t>(centers[c])];
      if (d < best) {
        second = best;
        best = d;
        best_at = static_cast<int>(c);
      } else if (d < second) {
        second = d;
      }
    }
    out.nearest[i] = best_at;
    out.d_nearest[i] = best;
    out.d_second[i] = second;
    out.cost += best;
  }
  return out;
}

}  // namespace

KMedianSolution KMedianLocalSearch(const Metric& metric,
                                   const std::vector<Point>& points, int k,
                                   const KMedianOptions& options) {
  KMedianSolution solution;
  if (points.empty()) return solution;
  FKC_CHECK_GT(k, 0) << "k-median needs at least one center";
  const size_t n = points.size();
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), n);

  // Full pairwise distances through the SoA kernels: one pool append pass,
  // then one DistanceSoA row per point (bit-identical to per-pair Distance
  // by the kernel contract, so the solver is deterministic at any width).
  CoordinatePool pool(points[0].dimension());
  for (const Point& p : points) pool.Append(p);
  std::vector<double> dist(n * n);
  for (size_t i = 0; i < n; ++i) {
    metric.DistanceSoA(points[i], pool, dist.data() + i * n);
  }

  // Gonzalez seeds: spread-out medoids make the local search start near a
  // good max-distance cover, which is also a decent sum-distance start.
  const GonzalezResult seeds =
      GonzalezKCenter(metric, points, static_cast<int>(kk));
  std::vector<int> centers(seeds.head_indices.begin(),
                           seeds.head_indices.end());
  std::sort(centers.begin(), centers.end());
  Assignment assignment = Assign(dist, n, centers);

  const int max_rounds =
      options.max_rounds > 0 ? options.max_rounds
                             : 2 * static_cast<int>(kk) + 8;
  std::vector<char> is_center(n, 0);
  for (int c : centers) is_center[static_cast<size_t>(c)] = 1;
  for (int round = 0; round < max_rounds; ++round) {
    // Best-improvement single swap: evaluate every (center out, point in)
    // pair against the current assignment; removal of a point's nearest
    // medoid costs d_second, any other removal keeps d_nearest, and the
    // incoming medoid caps both at dist[i][in].
    double best_cost = assignment.cost;
    int best_out = -1;
    int best_in = -1;
    for (size_t c = 0; c < centers.size(); ++c) {
      for (size_t in = 0; in < n; ++in) {
        if (is_center[in]) continue;
        double cost = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double keep = assignment.nearest[i] == static_cast<int>(c)
                                  ? assignment.d_second[i]
                                  : assignment.d_nearest[i];
          cost += std::min(keep, dist[i * n + in]);
        }
        // Strict improvement with lowest (outgoing, incoming) tie-break:
        // scanning in ascending order and requiring `<` makes the chosen
        // swap independent of floating-point ties' scan order.
        if (cost < best_cost) {
          best_cost = cost;
          best_out = static_cast<int>(c);
          best_in = static_cast<int>(in);
        }
      }
    }
    if (best_out < 0) break;  // local optimum
    is_center[static_cast<size_t>(centers[best_out])] = 0;
    is_center[static_cast<size_t>(best_in)] = 1;
    centers[static_cast<size_t>(best_out)] = best_in;
    std::sort(centers.begin(), centers.end());
    assignment = Assign(dist, n, centers);
  }

  solution.centers.reserve(centers.size());
  for (int c : centers) solution.centers.push_back(points[static_cast<size_t>(c)]);
  solution.cost = assignment.cost;
  return solution;
}

}  // namespace fkc
