// Clustering-radius evaluation and the common solution/solver types shared by
// every fair-center algorithm in the library.
#ifndef FKC_SEQUENTIAL_RADIUS_H_
#define FKC_SEQUENTIAL_RADIUS_H_

#include <vector>

#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {

/// r_C(W) = max_{p in W} d(p, C). Returns 0 for an empty window and +inf for
/// a non-empty window with no centers.
double ClusteringRadius(const Metric& metric, const std::vector<Point>& window,
                        const std::vector<Point>& centers);

/// For each window point, the index of its closest center (ties to the
/// lowest index). Requires a non-empty center set.
std::vector<int> AssignToCenters(const Metric& metric,
                                 const std::vector<Point>& window,
                                 const std::vector<Point>& centers);

/// A fair-center solution: the chosen centers and their radius over the
/// point set they were computed for.
struct FairCenterSolution {
  std::vector<Point> centers;
  double radius = 0.0;
};

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_RADIUS_H_
