// Deterministic k-median over a point set: pick k medoids (actual input
// points) minimizing the SUM of point-to-nearest-medoid distances — the
// sibling objective to the fair-center solvers in this directory (which
// minimize the MAX). Gonzalez seeding followed by bounded best-improvement
// single-swap local search, the classical (3+2/p)-style scheme of
// Arya et al. restricted to single swaps; with Gonzalez seeds it converges
// in a handful of rounds on coreset-sized inputs.
//
// Determinism contract (same spirit as the streaming core): given the same
// metric and point order the result is bit-identical — seeding starts from
// index 0, argmins break ties toward the lowest index, and a swap is
// applied only when it strictly improves the cost, so no randomness or
// iteration-order dependence leaks into the output.
#ifndef FKC_SEQUENTIAL_K_MEDIAN_H_
#define FKC_SEQUENTIAL_K_MEDIAN_H_

#include <vector>

#include "metric/metric.h"
#include "metric/point.h"

namespace fkc {

/// A k-median answer: the chosen medoids (in ascending input-index order)
/// and the sum of distances from every input point to its nearest medoid.
struct KMedianSolution {
  std::vector<Point> centers;
  double cost = 0.0;
};

struct KMedianOptions {
  /// Local-search rounds bound; each round applies at most one swap.
  /// <= 0 resolves to 2k + 8, enough for Gonzalez seeds to settle on
  /// coreset-sized inputs while bounding the worst case.
  int max_rounds = 0;
};

/// Solves k-median on `points` (k clamped to the input size; empty input
/// yields an empty zero-cost solution). Builds the full n x n distance
/// matrix through the SoA kernels — O(n^2) space and O(rounds * k * n^2)
/// time, sized for query-time coresets, not raw windows.
KMedianSolution KMedianLocalSearch(const Metric& metric,
                                   const std::vector<Point>& points, int k,
                                   const KMedianOptions& options = {});

}  // namespace fkc

#endif  // FKC_SEQUENTIAL_K_MEDIAN_H_
