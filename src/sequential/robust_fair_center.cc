#include "sequential/robust_fair_center.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "matching/capacitated_matching.h"
#include "sequential/radius.h"

namespace fkc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One guess of the bicriteria scheme. On acceptance fills the solution
// (centers, outliers) and returns true.
bool TryRobustRadius(const Metric& metric, const std::vector<Point>& points,
                     const ColorConstraint& constraint, int num_outliers,
                     double r, RobustFairCenterSolution* solution) {
  const int n = static_cast<int>(points.size());
  const int k = constraint.TotalK();

  // Greedy head selection among uncovered points: each round takes the
  // uncovered point whose r-ball covers the most uncovered points, then
  // marks its 3r-ball covered. Heads end up pairwise > 3r apart, so their
  // r-balls are disjoint and matched centers are distinct.
  std::vector<bool> covered(n, false);
  std::vector<int> heads;
  for (int round = 0; round < k; ++round) {
    int best_head = -1;
    int best_gain = 0;
    for (int u = 0; u < n; ++u) {
      if (covered[u]) continue;
      int gain = 0;
      for (int v = 0; v < n; ++v) {
        if (!covered[v] && metric.Distance(points[u], points[v]) <= r) {
          ++gain;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_head = u;
      }
    }
    if (best_head == -1) break;  // everything covered
    heads.push_back(best_head);
    for (int v = 0; v < n; ++v) {
      if (!covered[v] &&
          metric.Distance(points[best_head], points[v]) <= 3.0 * r) {
        covered[v] = true;
      }
    }
  }

  // Match heads to color slots using the r-balls around heads.
  const int ell = constraint.ell();
  std::vector<std::vector<double>> best_distance(
      heads.size(), std::vector<double>(ell, kInf));
  std::vector<std::vector<int>> best_index(heads.size(),
                                           std::vector<int>(ell, -1));
  for (int i = 0; i < n; ++i) {
    for (size_t h = 0; h < heads.size(); ++h) {
      const double d = metric.Distance(points[i], points[heads[h]]);
      if (d <= r && d < best_distance[h][points[i].color]) {
        best_distance[h][points[i].color] = d;
        best_index[h][points[i].color] = i;
      }
    }
  }
  std::vector<std::vector<int>> allowed(heads.size());
  for (size_t h = 0; h < heads.size(); ++h) {
    for (int c = 0; c < ell; ++c) {
      if (constraint.cap(c) > 0 && best_index[h][c] != -1) {
        allowed[h].push_back(c);
      }
    }
  }
  const CapacitatedMatchingResult matching =
      MaximumCapacitatedMatching(allowed, constraint);

  // Unmatched heads are dropped; their points fall into the outlier budget.
  std::vector<Point> centers;
  for (size_t h = 0; h < heads.size(); ++h) {
    const int color = matching.assigned_color[h];
    if (color != -1) centers.push_back(points[best_index[h][color]]);
  }
  if (centers.empty()) return false;

  // Coverage at 4r: head's 3r-ball shifted by the head-to-center distance r.
  std::vector<int> outliers;
  for (int i = 0; i < n; ++i) {
    if (DistanceToSet(metric, points[i], centers) > 4.0 * r) {
      outliers.push_back(i);
      if (static_cast<int>(outliers.size()) > num_outliers) return false;
    }
  }

  solution->centers = std::move(centers);
  solution->outlier_indices = std::move(outliers);
  // Exact covering radius of the retained points.
  double radius = 0.0;
  size_t next_outlier = 0;
  for (int i = 0; i < n; ++i) {
    if (next_outlier < solution->outlier_indices.size() &&
        solution->outlier_indices[next_outlier] == i) {
      ++next_outlier;
      continue;
    }
    radius = std::max(radius,
                      DistanceToSet(metric, points[i], solution->centers));
  }
  solution->radius = radius;
  return true;
}

}  // namespace

Result<RobustFairCenterSolution> SolveRobustFairCenter(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint, int num_outliers) {
  if (num_outliers < 0) {
    return Status::InvalidArgument("negative outlier budget");
  }
  if (points.empty()) return RobustFairCenterSolution{};
  for (const Point& p : points) {
    if (p.color < 0 || p.color >= constraint.ell()) {
      return Status::InvalidArgument("point color out of range: " +
                                     p.ToString());
    }
  }
  if (constraint.TotalK() <= 0) {
    return Status::Infeasible("all color caps are zero");
  }
  if (num_outliers >= static_cast<int>(points.size())) {
    // Everything may be discarded; any single feasible center works.
    for (const Point& p : points) {
      if (constraint.cap(p.color) > 0) {
        RobustFairCenterSolution solution;
        solution.centers = {p};
        solution.radius = 0.0;
        for (int i = 0; i < static_cast<int>(points.size()); ++i) {
          if (!SamePoint(points[i], p)) solution.outlier_indices.push_back(i);
        }
        return solution;
      }
    }
    return Status::Infeasible("no point has a usable color");
  }

  // Candidate radii: all pairwise distances (OPT is one of them), plus 0.
  std::vector<double> candidates = {0.0};
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      candidates.push_back(metric.Distance(points[i], points[j]));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  RobustFairCenterSolution best;
  if (!TryRobustRadius(metric, points, constraint, num_outliers,
                       candidates.back(), &best)) {
    return Status::Infeasible("even the diameter guess cannot cover");
  }
  size_t lo = 0;
  size_t hi = candidates.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    RobustFairCenterSolution attempt;
    if (TryRobustRadius(metric, points, constraint, num_outliers,
                        candidates[mid], &attempt)) {
      best = std::move(attempt);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

Result<RobustFairCenterSolution> BruteForceRobustFairCenter(
    const Metric& metric, const std::vector<Point>& points,
    const ColorConstraint& constraint, int num_outliers) {
  if (points.empty()) return RobustFairCenterSolution{};
  FKC_CHECK_LE(points.size(), 32u) << "exponential enumeration; tests only";
  if (num_outliers < 0) {
    return Status::InvalidArgument("negative outlier budget");
  }

  // Per-color pools with maximal takes (more centers never hurt coverage).
  const int n = static_cast<int>(points.size());
  std::vector<std::vector<int>> pool(constraint.ell());
  for (int i = 0; i < n; ++i) pool[points[i].color].push_back(i);
  std::vector<int> take(constraint.ell());
  int total = 0;
  for (int c = 0; c < constraint.ell(); ++c) {
    take[c] = std::min<int>(constraint.cap(c),
                            static_cast<int>(pool[c].size()));
    total += take[c];
  }
  if (total == 0) return Status::Infeasible("all usable caps are zero");

  RobustFairCenterSolution best;
  best.radius = kInf;
  std::vector<int> chosen;

  std::function<void(int)> recurse = [&](int color) {
    if (color == constraint.ell()) {
      std::vector<Point> centers;
      for (int idx : chosen) centers.push_back(points[idx]);
      // Radius = (n - z)-th smallest center distance.
      std::vector<std::pair<double, int>> distances;
      distances.reserve(n);
      for (int i = 0; i < n; ++i) {
        distances.push_back({DistanceToSet(metric, points[i], centers), i});
      }
      std::sort(distances.begin(), distances.end());
      const int keep = n - std::min(num_outliers, n);
      const double radius = keep == 0 ? 0.0 : distances[keep - 1].first;
      if (radius < best.radius) {
        best.radius = radius;
        best.centers = std::move(centers);
        best.outlier_indices.clear();
        for (int i = keep; i < n; ++i) {
          best.outlier_indices.push_back(distances[i].second);
        }
        std::sort(best.outlier_indices.begin(), best.outlier_indices.end());
      }
      return;
    }
    if (take[color] == 0) {
      recurse(color + 1);
      return;
    }
    // All size-take[color] combinations of pool[color].
    std::vector<int> combo(take[color]);
    std::function<void(int, int)> combos = [&](int start, int depth) {
      if (depth == take[color]) {
        const size_t before = chosen.size();
        chosen.insert(chosen.end(), combo.begin(), combo.end());
        recurse(color + 1);
        chosen.resize(before);
        return;
      }
      for (size_t i = start;
           i + (take[color] - depth) <= pool[color].size(); ++i) {
        combo[depth] = pool[color][i];
        combos(static_cast<int>(i) + 1, depth + 1);
      }
    };
    combos(0, 0);
  };
  recurse(0);

  FKC_CHECK(std::isfinite(best.radius));
  return best;
}

}  // namespace fkc
