// Named dataset registry used by benches and examples: maps the dataset
// names of the paper's evaluation (phones, higgs, covtype, blobs, rotated)
// to generators with the experiment's canonical parameters.
#ifndef FKC_DATASETS_REGISTRY_H_
#define FKC_DATASETS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "metric/point.h"
#include "stream/stream.h"

namespace fkc {
namespace datasets {

/// A generated dataset with its color count.
struct Dataset {
  std::vector<Point> points;
  int ell = 0;
  std::string name;
};

/// Generates `num_points` points of the named dataset with `seed`.
/// Known names:
///   "phones"    3-d, ell=7   (PHONES stand-in)
///   "higgs"     7-d, ell=2   (HIGGS stand-in)
///   "covtype"   54-d, ell=7  (COVTYPE stand-in)
///   "blobs<d>"  d-d,  ell=7  (e.g. "blobs3"; paper sweeps d in [2,10])
///   "rotated<D>" D coords, intrinsic 3-d, ell=7 (e.g. "rotated15")
///
/// For the three real-dataset names, a prepared CSV (see
/// datasets/download_real_datasets.sh) is preferred when present under
/// $FKC_DATA_DIR (default "datasets/"); the statistical simulators are the
/// fallback, so every bench and test runs with or without the downloads.
Result<Dataset> MakeDataset(const std::string& name, int64_t num_points,
                            uint64_t seed = 42);

/// Loads the real dataset `name` ("phones" / "higgs" / "covtype") from the
/// prepared CSV `<dir>/<name>.csv` (numeric coordinates, 0-based integer
/// color in the last column — the format written by
/// datasets/download_real_datasets.sh). An empty `dir` resolves to
/// $FKC_DATA_DIR, then "datasets". The first `num_points` rows are used,
/// cycling when the file is shorter. Returns kNotFound when the file is
/// absent (callers fall back to the simulators).
Result<Dataset> LoadRealDataset(const std::string& name, int64_t num_points,
                                const std::string& dir = "");

/// The three real-dataset stand-ins of the main experiments.
std::vector<std::string> RealDatasetNames();

/// Wraps a dataset as a cycling stream (so any stream length is available).
std::unique_ptr<VectorStream> MakeStream(Dataset dataset);

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_REGISTRY_H_
