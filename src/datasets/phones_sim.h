// Simulated stand-in for the UCI PHONES dataset (Heterogeneity Activity
// Recognition): 3-d sensor positions labelled with one of 7 user actions
// (stand, sit, walk, bike, stairs up, stairs down, null), aspect ratio
// ~6.4e5. The UCI download is unavailable offline; this generator matches
// the characteristics the algorithms are sensitive to — dimensionality,
// number of colors, temporal locality (sensor traces drift), sticky labels
// (activities persist), and a wide aspect ratio (bursts / device handoffs).
#ifndef FKC_DATASETS_PHONES_SIM_H_
#define FKC_DATASETS_PHONES_SIM_H_

#include <cstdint>
#include <vector>

#include "metric/point.h"

namespace fkc {
namespace datasets {

struct PhonesSimOptions {
  int64_t num_points = 100000;
  int ell = 7;
  /// Probability of keeping the current activity at each step (sticky
  /// Markov labels, as in a real activity trace).
  double activity_stickiness = 0.98;
  /// Per-activity random-walk step scale; actual steps are scaled by
  /// (1 + activity index).
  double base_step = 0.05;
  /// Probability of a device handoff: the trace teleports far away, which
  /// produces the large distances behind the dataset's huge aspect ratio.
  double handoff_probability = 2e-4;
  double handoff_scale = 5000.0;
  uint64_t seed = 42;
};

std::vector<Point> GeneratePhonesSim(const PhonesSimOptions& options);

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_PHONES_SIM_H_
