// The paper's `rotated` synthetic family (Section 4.3): low-dimensional data
// zero-padded to a higher ambient dimension and then rigidly rotated by a
// random orthogonal matrix. The intrinsic (doubling) dimension is unchanged,
// so algorithms whose cost depends on the *actual* dimensionality must be
// insensitive to the coordinate count — the claim Figure 5 verifies.
#ifndef FKC_DATASETS_ROTATED_H_
#define FKC_DATASETS_ROTATED_H_

#include <cstdint>
#include <vector>

#include "metric/point.h"

namespace fkc {
namespace datasets {

/// A random orthogonal target_dim x target_dim matrix (Gram-Schmidt on a
/// Gaussian matrix), row-major.
std::vector<std::vector<double>> RandomRotation(int target_dim, uint64_t seed);

/// Zero-pads every point of `base` to `target_dim` coordinates and applies
/// one shared random rotation. Colors and metadata are preserved; pairwise
/// Euclidean distances are exactly preserved (rigid motion).
std::vector<Point> RotateAndPad(const std::vector<Point>& base, int target_dim,
                                uint64_t seed);

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_ROTATED_H_
