#include "datasets/higgs_sim.h"

#include "common/logging.h"
#include "common/random.h"

namespace fkc {
namespace datasets {

std::vector<Point> GenerateHiggsSim(const HiggsSimOptions& options) {
  FKC_CHECK_GT(options.num_points, 0);
  FKC_CHECK_GT(options.dimension, 0);
  Rng rng(options.seed);

  // Class-conditional means: the signal class sits slightly displaced from
  // the background, as in the real kinematic features.
  Coordinates signal_mean(options.dimension);
  Coordinates noise_mean(options.dimension);
  for (int d = 0; d < options.dimension; ++d) {
    signal_mean[d] = rng.NextUniform(-1.0, 1.0);
    noise_mean[d] = rng.NextUniform(-1.0, 1.0);
  }

  std::vector<Point> points;
  points.reserve(options.num_points);
  for (int64_t i = 0; i < options.num_points; ++i) {
    const bool is_signal = rng.NextBernoulli(options.signal_fraction);
    const Coordinates& mean = is_signal ? signal_mean : noise_mean;
    Coordinates coords(options.dimension);
    for (int d = 0; d < options.dimension; ++d) {
      coords[d] = rng.NextGaussian(mean[d], 1.0);
      if (rng.NextBernoulli(options.tail_probability)) {
        coords[d] *= options.tail_scale * rng.NextDouble();
      }
    }
    points.emplace_back(std::move(coords), is_signal ? 0 : 1);
  }
  return points;
}

}  // namespace datasets
}  // namespace fkc
