#include "datasets/phones_sim.h"

#include "common/logging.h"
#include "common/random.h"

namespace fkc {
namespace datasets {

std::vector<Point> GeneratePhonesSim(const PhonesSimOptions& options) {
  FKC_CHECK_GT(options.num_points, 0);
  FKC_CHECK_GT(options.ell, 0);
  Rng rng(options.seed);

  Coordinates position = {0.0, 0.0, 0.0};
  int activity = 0;

  std::vector<Point> points;
  points.reserve(options.num_points);
  for (int64_t i = 0; i < options.num_points; ++i) {
    // Sticky activity labels.
    if (!rng.NextBernoulli(options.activity_stickiness)) {
      activity =
          static_cast<int>(rng.NextBounded(static_cast<uint64_t>(options.ell)));
    }
    // Activity-dependent random walk (a stationary user moves less than a
    // biking one).
    const double step = options.base_step * (1.0 + activity);
    for (double& x : position) x += rng.NextGaussian(0.0, step);
    // Rare handoffs create the far-apart regimes behind the large aspect
    // ratio of the real trace.
    if (rng.NextBernoulli(options.handoff_probability)) {
      for (double& x : position) {
        x += rng.NextGaussian(0.0, options.handoff_scale);
      }
    }
    points.emplace_back(position, activity);
  }
  return points;
}

}  // namespace datasets
}  // namespace fkc
