#include "datasets/registry.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "datasets/blobs.h"
#include "datasets/covtype_sim.h"
#include "datasets/csv_loader.h"
#include "datasets/higgs_sim.h"
#include "datasets/phones_sim.h"
#include "datasets/rotated.h"

namespace fkc {
namespace datasets {

namespace {

/// Directory holding the prepared real-dataset CSVs.
std::string ResolveDataDir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* env = std::getenv("FKC_DATA_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "datasets";
}

bool IsRealDatasetName(const std::string& name) {
  return name == "phones" || name == "higgs" || name == "covtype";
}

/// True when FKC_REQUIRE_REAL_DATA is set to anything but "" or "0": the
/// caller wants real-data numbers, so a missing prepared CSV must be an
/// error, never a silent switch to the statistical simulator.
bool RealDataRequired() {
  const char* env = std::getenv("FKC_REQUIRE_REAL_DATA");
  return env != nullptr && env[0] != '\0' &&
         std::string(env) != "0";
}

/// Warns (once per dataset name per process) that the simulator is standing
/// in for a missing prepared CSV, naming the path probed and FKC_DATA_DIR
/// so the fix is obvious from the log line alone.
void WarnSimulatorFallback(const std::string& name, const std::string& path) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (!warned->insert(name).second) return;
  FKC_LOG(Warning) << "no prepared CSV for '" << name << "' at " << path
                   << " (FKC_DATA_DIR="
                   << ResolveDataDir("") << "); falling back to the "
                   << "statistical simulator. Run "
                   << "datasets/download_real_datasets.sh or point "
                   << "FKC_DATA_DIR at the prepared files; set "
                   << "FKC_REQUIRE_REAL_DATA=1 to make this an error.";
}

}  // namespace

Result<Dataset> LoadRealDataset(const std::string& name, int64_t num_points,
                                const std::string& dir) {
  if (!IsRealDatasetName(name)) {
    return Status::InvalidArgument("no real-dataset CSV defined for '" +
                                   name + "'");
  }
  const std::string path = ResolveDataDir(dir) + "/" + name + ".csv";
  // Probe before LoadCsv so the common "not downloaded" case reports
  // kNotFound (fall back to the simulator), not kIoError.
  if (!std::ifstream(path).is_open()) {
    return Status::NotFound("no prepared CSV at " + path);
  }
  auto loaded = LoadCsv(path);  // color in the last column (prepared format)
  if (!loaded.ok()) return loaded.status();
  std::vector<Point>& rows = loaded.value();
  if (rows.empty()) {
    return Status::InvalidArgument("empty real-dataset CSV " + path);
  }

  Dataset dataset;
  dataset.name = name;
  int max_color = 0;
  for (const Point& p : rows) {
    if (p.color < 0) {
      return Status::InvalidArgument(path +
                                     ": colors must be 0-based non-negative");
    }
    max_color = std::max(max_color, p.color);
  }
  dataset.ell = max_color + 1;
  dataset.points.reserve(static_cast<size_t>(num_points));
  for (int64_t i = 0; i < num_points; ++i) {
    dataset.points.push_back(rows[static_cast<size_t>(i) % rows.size()]);
  }
  return dataset;
}

Result<Dataset> MakeDataset(const std::string& name, int64_t num_points,
                            uint64_t seed) {
  // Real files beat statistical stand-ins whenever they have been
  // downloaded; everything below is the simulator fallback.
  if (IsRealDatasetName(name)) {
    auto real = LoadRealDataset(name, num_points);
    if (real.ok()) return real;
    if (real.status().code() != StatusCode::kNotFound) return real.status();
    const std::string path = ResolveDataDir("") + "/" + name + ".csv";
    if (RealDataRequired()) {
      return Status::NotFound(
          "FKC_REQUIRE_REAL_DATA is set but no prepared CSV for '" + name +
          "' exists at " + path +
          " (FKC_DATA_DIR resolves to " + ResolveDataDir("") +
          "); run datasets/download_real_datasets.sh");
    }
    WarnSimulatorFallback(name, path);
  }

  Dataset dataset;
  dataset.name = name;
  if (name == "phones") {
    PhonesSimOptions options;
    options.num_points = num_points;
    options.seed = seed;
    dataset.points = GeneratePhonesSim(options);
    dataset.ell = options.ell;
    return dataset;
  }
  if (name == "higgs") {
    HiggsSimOptions options;
    options.num_points = num_points;
    options.seed = seed;
    dataset.points = GenerateHiggsSim(options);
    dataset.ell = 2;
    return dataset;
  }
  if (name == "covtype") {
    CovtypeSimOptions options;
    options.num_points = num_points;
    options.seed = seed;
    dataset.points = GenerateCovtypeSim(options);
    dataset.ell = options.ell;
    return dataset;
  }
  if (StartsWith(name, "blobs")) {
    auto parsed = ParseInt(name.substr(5));
    if (!parsed.ok() || parsed.value() < 1 || parsed.value() > 1000) {
      return Status::InvalidArgument("bad blobs dimension in '" + name + "'");
    }
    BlobsOptions options;
    options.num_points = num_points;
    options.dimension = static_cast<int>(parsed.value());
    options.seed = seed;
    dataset.points = GenerateBlobs(options);
    dataset.ell = options.ell;
    return dataset;
  }
  if (StartsWith(name, "rotated")) {
    auto parsed = ParseInt(name.substr(7));
    if (!parsed.ok() || parsed.value() < 3 || parsed.value() > 1000) {
      return Status::InvalidArgument("bad rotated dimension in '" + name +
                                     "'");
    }
    // Base: the PHONES stand-in (3-d), as in the paper.
    PhonesSimOptions base_options;
    base_options.num_points = num_points;
    base_options.seed = seed;
    dataset.points = RotateAndPad(GeneratePhonesSim(base_options),
                                  static_cast<int>(parsed.value()), seed + 1);
    dataset.ell = base_options.ell;
    return dataset;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

std::vector<std::string> RealDatasetNames() {
  return {"phones", "higgs", "covtype"};
}

std::unique_ptr<VectorStream> MakeStream(Dataset dataset) {
  return std::make_unique<VectorStream>(std::move(dataset.points),
                                        dataset.ell, dataset.name,
                                        /*cycle=*/true);
}

}  // namespace datasets
}  // namespace fkc
