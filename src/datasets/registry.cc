#include "datasets/registry.h"

#include "common/string_util.h"
#include "datasets/blobs.h"
#include "datasets/covtype_sim.h"
#include "datasets/higgs_sim.h"
#include "datasets/phones_sim.h"
#include "datasets/rotated.h"

namespace fkc {
namespace datasets {

Result<Dataset> MakeDataset(const std::string& name, int64_t num_points,
                            uint64_t seed) {
  Dataset dataset;
  dataset.name = name;
  if (name == "phones") {
    PhonesSimOptions options;
    options.num_points = num_points;
    options.seed = seed;
    dataset.points = GeneratePhonesSim(options);
    dataset.ell = options.ell;
    return dataset;
  }
  if (name == "higgs") {
    HiggsSimOptions options;
    options.num_points = num_points;
    options.seed = seed;
    dataset.points = GenerateHiggsSim(options);
    dataset.ell = 2;
    return dataset;
  }
  if (name == "covtype") {
    CovtypeSimOptions options;
    options.num_points = num_points;
    options.seed = seed;
    dataset.points = GenerateCovtypeSim(options);
    dataset.ell = options.ell;
    return dataset;
  }
  if (StartsWith(name, "blobs")) {
    auto parsed = ParseInt(name.substr(5));
    if (!parsed.ok() || parsed.value() < 1 || parsed.value() > 1000) {
      return Status::InvalidArgument("bad blobs dimension in '" + name + "'");
    }
    BlobsOptions options;
    options.num_points = num_points;
    options.dimension = static_cast<int>(parsed.value());
    options.seed = seed;
    dataset.points = GenerateBlobs(options);
    dataset.ell = options.ell;
    return dataset;
  }
  if (StartsWith(name, "rotated")) {
    auto parsed = ParseInt(name.substr(7));
    if (!parsed.ok() || parsed.value() < 3 || parsed.value() > 1000) {
      return Status::InvalidArgument("bad rotated dimension in '" + name +
                                     "'");
    }
    // Base: the PHONES stand-in (3-d), as in the paper.
    PhonesSimOptions base_options;
    base_options.num_points = num_points;
    base_options.seed = seed;
    dataset.points = RotateAndPad(GeneratePhonesSim(base_options),
                                  static_cast<int>(parsed.value()), seed + 1);
    dataset.ell = base_options.ell;
    return dataset;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

std::vector<std::string> RealDatasetNames() {
  return {"phones", "higgs", "covtype"};
}

std::unique_ptr<VectorStream> MakeStream(Dataset dataset) {
  return std::make_unique<VectorStream>(std::move(dataset.points),
                                        dataset.ell, dataset.name,
                                        /*cycle=*/true);
}

}  // namespace datasets
}  // namespace fkc
