#include "datasets/blobs.h"

#include "common/logging.h"
#include "common/random.h"

namespace fkc {
namespace datasets {

std::vector<Point> GenerateBlobs(const BlobsOptions& options) {
  FKC_CHECK_GT(options.num_points, 0);
  FKC_CHECK_GT(options.dimension, 0);
  FKC_CHECK_GT(options.num_blobs, 0);
  FKC_CHECK_GT(options.ell, 0);

  Rng rng(options.seed);
  std::vector<Coordinates> centers(options.num_blobs);
  for (auto& center : centers) {
    center.resize(options.dimension);
    for (double& x : center) x = rng.NextUniform(0.0, options.box_side);
  }

  std::vector<Point> points;
  points.reserve(options.num_points);
  for (int64_t i = 0; i < options.num_points; ++i) {
    const auto& center =
        centers[rng.NextBounded(static_cast<uint64_t>(options.num_blobs))];
    Coordinates coords(options.dimension);
    for (int d = 0; d < options.dimension; ++d) {
      coords[d] = rng.NextGaussian(center[d], options.sigma);
    }
    const int color = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(options.ell)));
    points.emplace_back(std::move(coords), color);
  }
  return points;
}

}  // namespace datasets
}  // namespace fkc
