// Simulated stand-in for the UCI HIGGS dataset: 7-dimensional kinematic
// feature vectors of simulated particle collisions, labelled signal vs noise
// (ell = 2), aspect ratio ~2.3e4. Matches dimensionality, the two-class
// color structure, heavy-tailed features (the source of the moderate aspect
// ratio) and an i.i.d. (non-drifting) stream.
#ifndef FKC_DATASETS_HIGGS_SIM_H_
#define FKC_DATASETS_HIGGS_SIM_H_

#include <cstdint>
#include <vector>

#include "metric/point.h"

namespace fkc {
namespace datasets {

struct HiggsSimOptions {
  int64_t num_points = 100000;
  int dimension = 7;
  double signal_fraction = 0.53;  // the real dataset is roughly balanced
  /// Probability that one feature takes a heavy-tail excursion.
  double tail_probability = 1e-3;
  double tail_scale = 300.0;
  uint64_t seed = 42;
};

std::vector<Point> GenerateHiggsSim(const HiggsSimOptions& options);

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_HIGGS_SIM_H_
