#include "datasets/csv_loader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace fkc {
namespace datasets {

Result<std::vector<Point>> ParseCsv(const std::string& content,
                                    const CsvOptions& options) {
  std::vector<Point> points;
  std::istringstream in(content);
  std::string line;
  int line_number = 0;
  size_t expected_fields = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line_number <= options.skip_lines) continue;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;

    const std::vector<std::string> fields =
        StrSplit(stripped, options.delimiter);
    if (expected_fields == 0) {
      expected_fields = fields.size();
      if (expected_fields < 2) {
        return Status::InvalidArgument(
            "CSV rows need at least one coordinate and a color");
      }
    } else if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          StrFormat("line %d has %zu fields, expected %zu", line_number,
                    fields.size(), expected_fields));
    }

    const int color_column = options.color_column >= 0
                                 ? options.color_column
                                 : static_cast<int>(fields.size()) - 1;
    if (color_column >= static_cast<int>(fields.size())) {
      return Status::InvalidArgument("color column out of range");
    }

    Coordinates coords;
    coords.reserve(fields.size() - 1);
    int color = 0;
    for (size_t f = 0; f < fields.size(); ++f) {
      if (static_cast<int>(f) == color_column) {
        auto parsed = ParseInt(fields[f]);
        if (!parsed.ok()) {
          return Status::InvalidArgument(
              StrFormat("line %d: bad color '%s'", line_number,
                        fields[f].c_str()));
        }
        color = static_cast<int>(parsed.value());
      } else {
        auto parsed = ParseDouble(fields[f]);
        if (!parsed.ok()) {
          return Status::InvalidArgument(
              StrFormat("line %d: bad coordinate '%s'", line_number,
                        fields[f].c_str()));
        }
        coords.push_back(parsed.value());
      }
    }
    points.emplace_back(std::move(coords), color);
  }
  return points;
}

Result<std::vector<Point>> LoadCsv(const std::string& path,
                                   const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), options);
}

}  // namespace datasets
}  // namespace fkc
