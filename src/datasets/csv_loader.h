// CSV ingestion so the real UCI datasets can be dropped in when available:
// one point per row, numeric coordinates, and the color label in a chosen
// column.
#ifndef FKC_DATASETS_CSV_LOADER_H_
#define FKC_DATASETS_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "metric/point.h"

namespace fkc {
namespace datasets {

struct CsvOptions {
  char delimiter = ',';
  /// Column index (0-based) holding the integer color label; -1 means the
  /// last column.
  int color_column = -1;
  /// Skip this many header lines.
  int skip_lines = 0;
};

/// Loads points from a CSV file. Every non-color column must parse as a
/// number; rows with the wrong arity are an error (fail fast rather than
/// silently skewing an experiment).
Result<std::vector<Point>> LoadCsv(const std::string& path,
                                   const CsvOptions& options = {});

/// Parses CSV content from a string (testing and embedding).
Result<std::vector<Point>> ParseCsv(const std::string& content,
                                    const CsvOptions& options = {});

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_CSV_LOADER_H_
