// Simulated stand-in for the UCI COVTYPE dataset: 54-dimensional
// cartographic observations labelled with one of 7 forest cover types,
// aspect ratio ~3.1e3. The defining property for this library is that the
// ambient dimension (54) far exceeds the intrinsic one: real cartographic
// variables are strongly correlated. The generator therefore samples a
// low-dimensional latent mixture (one component per cover type) and embeds
// it linearly into 54 coordinates plus small noise.
#ifndef FKC_DATASETS_COVTYPE_SIM_H_
#define FKC_DATASETS_COVTYPE_SIM_H_

#include <cstdint>
#include <vector>

#include "metric/point.h"

namespace fkc {
namespace datasets {

struct CovtypeSimOptions {
  int64_t num_points = 100000;
  int ambient_dimension = 54;
  int latent_dimension = 8;
  int ell = 7;  // cover types, one latent mixture component each
  /// Per-ambient-coordinate noise after the embedding.
  double embedding_noise = 0.05;
  uint64_t seed = 42;
};

std::vector<Point> GenerateCovtypeSim(const CovtypeSimOptions& options);

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_COVTYPE_SIM_H_
