#include "datasets/rotated.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace fkc {
namespace datasets {

std::vector<std::vector<double>> RandomRotation(int target_dim,
                                                uint64_t seed) {
  FKC_CHECK_GT(target_dim, 0);
  Rng rng(seed);
  std::vector<std::vector<double>> m(target_dim,
                                     std::vector<double>(target_dim));
  // Gram–Schmidt on rows of a Gaussian matrix: yields a Haar-ish random
  // orthogonal matrix, which is all a rigid rotation needs.
  for (int r = 0; r < target_dim; ++r) {
    for (;;) {
      for (int c = 0; c < target_dim; ++c) m[r][c] = rng.NextGaussian();
      for (int prev = 0; prev < r; ++prev) {
        double dot = 0.0;
        for (int c = 0; c < target_dim; ++c) dot += m[r][c] * m[prev][c];
        for (int c = 0; c < target_dim; ++c) m[r][c] -= dot * m[prev][c];
      }
      double norm = 0.0;
      for (int c = 0; c < target_dim; ++c) norm += m[r][c] * m[r][c];
      norm = std::sqrt(norm);
      if (norm > 1e-9) {  // retry on (astronomically unlikely) degeneracy
        for (int c = 0; c < target_dim; ++c) m[r][c] /= norm;
        break;
      }
    }
  }
  return m;
}

std::vector<Point> RotateAndPad(const std::vector<Point>& base, int target_dim,
                                uint64_t seed) {
  FKC_CHECK_GT(target_dim, 0);
  const auto rotation = RandomRotation(target_dim, seed);

  std::vector<Point> out;
  out.reserve(base.size());
  for (const Point& p : base) {
    FKC_CHECK_LE(p.dimension(), static_cast<size_t>(target_dim));
    Coordinates padded(target_dim, 0.0);
    for (size_t d = 0; d < p.dimension(); ++d) padded[d] = p.coords[d];

    Coordinates rotated(target_dim, 0.0);
    for (int r = 0; r < target_dim; ++r) {
      double sum = 0.0;
      for (int c = 0; c < target_dim; ++c) sum += rotation[r][c] * padded[c];
      rotated[r] = sum;
    }
    Point q = p;
    q.coords = std::move(rotated);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace datasets
}  // namespace fkc
