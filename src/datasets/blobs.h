// The paper's `blobs` synthetic family (Section 4.3): a mixture of 21
// multivariate d-dimensional Gaussians with covariance sigma^2 * I
// (sigma = 2), each point colored uniformly at random among 7 colors. Used
// to study how cost scales with the true data dimensionality.
#ifndef FKC_DATASETS_BLOBS_H_
#define FKC_DATASETS_BLOBS_H_

#include <cstdint>
#include <vector>

#include "metric/point.h"

namespace fkc {
namespace datasets {

struct BlobsOptions {
  int64_t num_points = 100000;
  int dimension = 3;
  int num_blobs = 21;    // the paper's 21 mixture components
  double sigma = 2.0;    // per-coordinate standard deviation
  int ell = 7;           // colors, assigned uniformly at random
  double box_side = 100.0;  // blob centers drawn uniformly in [0, side]^d
  uint64_t seed = 42;
};

/// Generates the blobs mixture. Points are emitted in random mixture order
/// (component chosen uniformly per point), which makes the stream
/// stationary: every window sees all 21 blobs.
std::vector<Point> GenerateBlobs(const BlobsOptions& options);

}  // namespace datasets
}  // namespace fkc

#endif  // FKC_DATASETS_BLOBS_H_
