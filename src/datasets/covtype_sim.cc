#include "datasets/covtype_sim.h"

#include "common/logging.h"
#include "common/random.h"

namespace fkc {
namespace datasets {

std::vector<Point> GenerateCovtypeSim(const CovtypeSimOptions& options) {
  FKC_CHECK_GT(options.num_points, 0);
  FKC_CHECK_GT(options.ambient_dimension, 0);
  FKC_CHECK_GT(options.latent_dimension, 0);
  FKC_CHECK_LE(options.latent_dimension, options.ambient_dimension);
  FKC_CHECK_GT(options.ell, 0);
  Rng rng(options.seed);

  // Latent mixture: one component per cover type. Cover types in the real
  // data are imbalanced; weight them geometrically.
  std::vector<Coordinates> latent_means(options.ell);
  std::vector<double> weights(options.ell);
  for (int c = 0; c < options.ell; ++c) {
    latent_means[c].resize(options.latent_dimension);
    for (double& x : latent_means[c]) x = rng.NextUniform(0.0, 20.0);
    weights[c] = 1.0 / (1.0 + c);  // covertypes 1-2 dominate the real data
  }

  // Shared linear embedding latent -> ambient.
  std::vector<Coordinates> embedding(options.ambient_dimension);
  for (auto& row : embedding) {
    row.resize(options.latent_dimension);
    for (double& x : row) x = rng.NextGaussian(0.0, 1.0);
  }

  std::vector<Point> points;
  points.reserve(options.num_points);
  for (int64_t i = 0; i < options.num_points; ++i) {
    const int cover = static_cast<int>(rng.NextDiscrete(weights));
    Coordinates latent(options.latent_dimension);
    for (int d = 0; d < options.latent_dimension; ++d) {
      latent[d] = rng.NextGaussian(latent_means[cover][d], 1.0);
    }
    Coordinates coords(options.ambient_dimension);
    for (int a = 0; a < options.ambient_dimension; ++a) {
      double sum = 0.0;
      for (int d = 0; d < options.latent_dimension; ++d) {
        sum += embedding[a][d] * latent[d];
      }
      coords[a] = sum + rng.NextGaussian(0.0, options.embedding_noise);
    }
    points.emplace_back(std::move(coords), cover);
  }
  return points;
}

}  // namespace datasets
}  // namespace fkc
